//! The execution engine: deterministic cooperative co-simulation.
//!
//! Each simulated user program runs as a schedulable task, but **all**
//! hardware and kernel interaction goes through [`UserEnv`], which holds a
//! single global simulation lock and only admits the task that the
//! simulated kernel has scheduled (and, on multicore, whose core holds the
//! window token). Preemption, blocking IPC and idle-time skipping happen
//! *inside* env calls, so attack code is written as natural straight-line
//! loops reading the simulated cycle counter — exactly like real attack
//! code against real hardware.
//!
//! Two executors implement that contract (see [`ExecMode`]):
//!
//! * **Cooperative** (the default): N environments become stackful
//!   coroutines ([`tp_exec::Coro`]) multiplexed over M host worker threads.
//!   Wherever an environment would block an OS thread — the `wait_turn`
//!   admission loop, and therefore every env op and `wait_preempt` — it
//!   *suspends* back to the worker instead, and a driver picks the next
//!   admissible task straight from the kernel's scheduling state. This is
//!   what lets a simulation hold thousands of environments (the `cloud`
//!   scenario) on a handful of host threads.
//! * **Thread-per-environment** (`TP_EXECUTOR=threads`): the original
//!   engine, one parked host thread per program, kept as a differential
//!   oracle — the workspace property tests pin that both executors produce
//!   bit-identical reports.
//!
//! Determinism: the scheduling admission predicate is a pure function of
//! simulation state, all randomness is seeded, and cross-core interleaving
//! is quantised to a fixed cycle window. Under the cooperative executor the
//! driver is additionally serialized (one task runs at any instant — which
//! the single window token already forces), so results are independent of
//! the worker count M by construction.

use crate::kernel::{Kernel, KernelError, SysReturn, Syscall};
use crate::objects::{DomainId, TcbId, ThreadState, VSpaceId};
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use tp_sim::{Asid, ColorSet, Machine, PAddr, PlatformConfig, SweepPlan, VAddr};

/// Default cross-core interleaving window (cycles).
pub const DEFAULT_WINDOW: u64 = 4_000;

/// Unwind payload used to terminate worker threads when the simulation
/// stops.
pub struct SimExit;

/// Why a failed simulation failed — the typed form of what used to be a
/// bare panic out of [`crate::SystemBuilder::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Broad classification (drives the campaign supervisor's retry and
    /// quarantine decisions).
    pub kind: SimErrorKind,
    /// The worker's panic payload or the watchdog's abort note.
    pub message: String,
}

/// Classification of a [`SimError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimErrorKind {
    /// A simulated program (or the kernel under it) panicked.
    ProgramPanic,
    /// The engine watchdog aborted the cell: its wall-clock deadline passed
    /// while the simulation was making no progress.
    Watchdog,
    /// The cooperative scheduler proved no progress is possible: every live
    /// environment is suspended and no token rotation can admit one.
    /// Detected deterministically from simulation state alone — same
    /// `at_interaction` and `waiting_envs` for a given seed regardless of
    /// worker count or coroutine backend; no wall clock involved.
    Deadlock {
        /// Thread ids of the environments still live when progress died,
        /// in spawn order.
        waiting_envs: Vec<u64>,
        /// The global interaction ordinal (syscalls + preemption waits) at
        /// which the deadlock was proven.
        at_interaction: u64,
    },
    /// A coroutine's stack guard canary was found dead at a check point —
    /// the environment overflowed its stack (or the `stack-overflow` fault
    /// class simulated doing so).
    StackOverflow,
}

impl SimError {
    /// Classify an engine error string: watchdog aborts announce themselves
    /// with a `watchdog:` prefix, deadlock reports with `deadlock`, canary
    /// deaths with `stack overflow`; everything else is a program failure.
    /// Typed deadlock details travel out-of-band through
    /// `SimInner::deadlock`; this string fallback carries empty fields.
    pub(crate) fn from_message(message: String) -> Self {
        let kind = if message.starts_with("watchdog") {
            SimErrorKind::Watchdog
        } else if message.starts_with("deadlock") {
            SimErrorKind::Deadlock {
                waiting_envs: Vec::new(),
                at_interaction: 0,
            }
        } else if message.starts_with("stack overflow") {
            SimErrorKind::StackOverflow
        } else {
            SimErrorKind::ProgramPanic
        };
        SimError { kind, message }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            SimErrorKind::ProgramPanic => write!(f, "simulated program failed: {}", self.message),
            SimErrorKind::Watchdog
            | SimErrorKind::Deadlock { .. }
            | SimErrorKind::StackOverflow => write!(f, "{}", self.message),
        }
    }
}

/// Process-wide executor health counters, cumulative since process start.
/// Consumers snapshot before and after a run and diff (the same pattern as
/// `boot_stats`), because campaign cells share one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthStats {
    /// Environments that failed in isolation (non-primary panic) while
    /// their siblings kept running.
    pub env_failed: u64,
    /// Deterministic scheduler deadlocks detected by the coop driver.
    pub deadlocks: u64,
    /// Stack guard canary deaths (real overflows or the `stack-overflow`
    /// fault class).
    pub stack_overflows: u64,
}

static ENV_FAILED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static DEADLOCKS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static STACK_OVERFLOWS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Snapshot the process-wide executor health counters.
#[must_use]
pub fn health_stats() -> HealthStats {
    use std::sync::atomic::Ordering::Relaxed;
    HealthStats {
        env_failed: ENV_FAILED.load(Relaxed),
        deadlocks: DEADLOCKS.load(Relaxed),
        stack_overflows: STACK_OVERFLOWS.load(Relaxed),
    }
}

/// Panic payload a failing environment's unwind is re-wrapped in before it
/// crosses [`tp_exec::Coro::take_panic`] (or the thread-executor join), so
/// quarantine records and exit messages can name the env, not just the cell.
pub struct EnvPanicPayload {
    /// The failing environment's thread id (`TcbId.0`).
    pub env: u64,
    /// The original panic message.
    pub message: String,
}

/// Per-environment completion outcome, carried in `SystemReport` in spawn
/// order so multi-tenant scenarios can report fleet statistics over
/// survivors instead of quarantining the whole cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvOutcome {
    /// The environment ran to completion (or unwound in a normal stop).
    Completed,
    /// The environment panicked and was isolated; its siblings kept
    /// running.
    Failed {
        /// The failing environment's thread id.
        env: u64,
        /// Its panic message.
        message: String,
    },
}

impl std::error::Error for SimError {}

/// A kernel-level event pending on a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvKind {
    /// The preemption timer.
    Tick,
    /// A one-shot user timer bound to an IRQ.
    Timer {
        /// The IRQ line.
        irq: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    cycle: u64,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.cycle, self.seq).cmp(&(other.cycle, other.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The shared simulation state.
pub struct SimInner {
    /// The hardware.
    pub machine: Machine,
    /// The kernel.
    pub kernel: Kernel,
    events: Vec<BinaryHeap<Reverse<Ev>>>,
    /// Which core currently holds the execution token.
    pub token: usize,
    /// Cross-core window in cycles.
    pub window: u64,
    /// Global stop flag.
    pub stop: bool,
    /// Cycle budget; exceeded ⇒ stop.
    pub max_cycles: u64,
    /// Primary (non-daemon) programs still running.
    pub primaries_left: usize,
    /// Bumped on every scheduling-relevant change; waiters recheck on it.
    pub epoch: u64,
    /// First error reported by a worker, if any.
    pub error: Option<String>,
    /// Wall-clock deadline for the watchdog: when set, threads parked on
    /// the scheduler condvar use timed waits and abort the simulation once
    /// the deadline passes. `None` (the default) keeps waits untimed and
    /// the hot path free of clock reads.
    pub deadline: Option<std::time::Instant>,
    /// Injected fault: panic on this (1-based) global syscall ordinal.
    fault_panic_at: Option<u64>,
    /// Injected fault: stop yielding after this (1-based) syscall ordinal.
    fault_stall_at: Option<u64>,
    /// Injected fault: swallow token rotations from the `at`-th would-move
    /// onward (sticky, so the wedge cannot self-heal on a later rotate).
    fault_lost_wakeup_at: Option<u64>,
    /// Injected fault: a coop worker dies after the `at`-th task drive.
    pub(crate) fault_worker_kill_at: Option<u64>,
    /// Injected fault: clobber the running coroutine's stack canary and
    /// raise the canonical overflow panic at the next interaction.
    fault_stack_overflow: bool,
    /// Token moves attempted while a lost-wakeup fault is armed, for the
    /// trigger ordinal.
    rotations_seen: u64,
    /// Syscalls and preemption waits executed so far — counted under the
    /// lock at execution time, so the ordinal is schedule-deterministic.
    /// Always counted (not just when a fault is armed): deadlock reports
    /// timestamp themselves with it.
    syscalls_seen: u64,
    /// Detected scheduler deadlock: waiting env ids (spawn order) and the
    /// interaction ordinal at which progress was proven impossible.
    pub(crate) deadlock: Option<(Vec<u64>, u64)>,
    /// Environments that failed in isolation, in failure order:
    /// `(env id, panic message)`. The cell keeps running.
    pub(crate) env_failures: Vec<(u64, String)>,
    seq: u64,
}

/// Action an armed environment fault demands at the current syscall.
enum EnvFault {
    /// Panic inside the engine op (unwinds into the worker handler).
    Panic(u64),
    /// Return normally, then stop yielding (spin off-lock forever).
    Stall(u64),
    /// Clobber the stack guard canary and raise the canonical overflow
    /// panic.
    StackSmash(u64),
}

/// The `stack-overflow` fault firing at interaction `n`: kill the running
/// coroutine's guard canary (so the backend's own at-suspend check would
/// trip too) and raise the canonical overflow panic directly. The direct
/// panic keeps the fault deterministic and identical under both executors —
/// the thread-per-environment engine never reaches a coroutine suspend
/// point, and a cooperative task that stays admitted may not suspend again.
fn smash_stack(n: u64) -> ! {
    tp_exec::clobber_canary();
    debug_assert!(!tp_exec::on_coroutine() || !tp_exec::canary_intact());
    panic!(
        "stack overflow: coroutine guard canary clobbered at interaction {n} \
         (raise TP_STACK_KB)"
    );
}

impl SimInner {
    /// Create the inner state.
    #[must_use]
    pub fn new(machine: Machine, kernel: Kernel, window: u64, max_cycles: u64) -> Self {
        let cores = machine.cfg.cores;
        SimInner {
            machine,
            kernel,
            events: (0..cores).map(|_| BinaryHeap::new()).collect(),
            token: 0,
            window,
            stop: false,
            max_cycles,
            primaries_left: 0,
            epoch: 0,
            error: None,
            deadline: None,
            fault_panic_at: None,
            fault_stall_at: None,
            fault_lost_wakeup_at: None,
            fault_worker_kill_at: None,
            fault_stack_overflow: false,
            rotations_seen: 0,
            syscalls_seen: 0,
            deadlock: None,
            env_failures: Vec::new(),
            seq: 0,
        }
    }

    /// Arm an environment or executor fault. Other fault classes are
    /// injected elsewhere and ignored here.
    pub fn arm_env_fault(&mut self, kind: crate::fault::FaultKind) {
        match kind {
            crate::fault::FaultKind::EnvPanic { at } => self.fault_panic_at = Some(at.max(1)),
            crate::fault::FaultKind::EnvStall { at } => self.fault_stall_at = Some(at.max(1)),
            crate::fault::FaultKind::LostWakeup { at } => {
                self.fault_lost_wakeup_at = Some(at.max(1));
            }
            crate::fault::FaultKind::WorkerKill { at } => {
                self.fault_worker_kill_at = Some(at.max(1));
            }
            crate::fault::FaultKind::StackOverflow => self.fault_stack_overflow = true,
            _ => {}
        }
    }

    /// Count one environment interaction (syscall or preemption wait) and
    /// report the fault (if any) due at this ordinal.
    fn env_fault_tick(&mut self) -> Option<EnvFault> {
        self.syscalls_seen += 1;
        if self.fault_panic_at == Some(self.syscalls_seen) {
            return Some(EnvFault::Panic(self.syscalls_seen));
        }
        if self.fault_stall_at == Some(self.syscalls_seen) {
            return Some(EnvFault::Stall(self.syscalls_seen));
        }
        if self.fault_stack_overflow {
            self.fault_stack_overflow = false;
            return Some(EnvFault::StackSmash(self.syscalls_seen));
        }
        None
    }

    /// The interaction ordinal so far (syscalls + preemption waits).
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.syscalls_seen
    }

    /// Whether an armed lost-wakeup fault swallows the token move the
    /// caller is about to make. Sticky from the `at`-th would-move on, so
    /// the wedge cannot be healed by a later rotation attempt.
    fn lost_wakeup_swallows(&mut self) -> bool {
        let Some(n) = self.fault_lost_wakeup_at else {
            return false;
        };
        self.rotations_seen += 1;
        self.rotations_seen >= n
    }

    /// Record a proven scheduler deadlock: stop the simulation with a typed
    /// report (`waiting_envs` in spawn order, the current interaction
    /// ordinal) instead of waiting for the wall-clock watchdog.
    pub(crate) fn note_deadlock(&mut self, waiting_envs: Vec<u64>) {
        let at = self.syscalls_seen;
        if self.deadlock.is_none() {
            DEADLOCKS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if self.error.is_none() {
                self.error = Some(format!(
                    "deadlock: {} environment(s) suspended with no runnable progress \
                     at interaction {at}",
                    waiting_envs.len()
                ));
            }
            self.deadlock = Some((waiting_envs, at));
        }
        self.stop = true;
        self.epoch += 1;
    }

    /// Schedule an event on a core at an absolute cycle.
    pub fn push_event(&mut self, core: usize, cycle: u64, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events[core].push(Reverse(Ev { cycle, seq, kind }));
    }

    /// Earliest pending event cycle on a core.
    #[must_use]
    pub fn next_event_cycle(&self, core: usize) -> Option<u64> {
        self.events[core].peek().map(|Reverse(e)| e.cycle)
    }

    /// Process all events on `core` that are due at its current cycle.
    pub fn process_due(&mut self, core: usize) {
        while let Some(&Reverse(ev)) = self.events[core].peek() {
            if ev.cycle > self.machine.cycles(core) {
                break;
            }
            self.events[core].pop();
            self.handle_event(core, ev);
        }
        if self.machine.cycles(core) >= self.max_cycles {
            self.stop = true;
            self.epoch += 1;
        }
    }

    fn handle_event(&mut self, core: usize, ev: Ev) {
        match ev.kind {
            EvKind::Tick => {
                let out = self.kernel.handle_tick(&mut self.machine, core);
                self.push_event(core, out.next_tick_at, EvKind::Tick);
            }
            EvKind::Timer { irq } => {
                self.kernel.irq_arrives(&mut self.machine, core, irq);
            }
        }
        self.epoch += 1;
    }

    /// Whether any core has a current thread.
    #[must_use]
    pub fn any_current(&self) -> bool {
        self.kernel.cores.iter().any(|c| c.cur.is_some())
    }

    /// While no thread is runnable anywhere, jump the laggard core to its
    /// next event and process it. Stops the simulation if the system is
    /// permanently idle.
    pub fn idle_advance(&mut self) {
        while !self.stop && !self.any_current() {
            let next = (0..self.events.len())
                .filter_map(|c| self.next_event_cycle(c).map(|cy| (cy, c)))
                .min();
            match next {
                Some((cycle, core)) => {
                    if self.machine.cycles(core) < cycle {
                        let delta = cycle - self.machine.cycles(core);
                        self.machine.advance(core, delta);
                    }
                    self.process_due(core);
                }
                None => {
                    self.stop = true;
                    self.epoch += 1;
                }
            }
        }
    }

    /// Move the token if the holder ran ahead of the laggard active core by
    /// more than the window, or stopped being active.
    ///
    /// Runs after every timed environment access, so it must not allocate:
    /// the laggard scan is a single pass over the (few) cores.
    pub fn rotate_token(&mut self) {
        let mut laggard: Option<(u64, usize)> = None;
        let mut token_active = false;
        for (i, c) in self.kernel.cores.iter().enumerate() {
            if c.cur.is_some() {
                let cy = self.machine.cycles(i);
                // Strict `<` keeps the first minimum, like the min_by_key
                // scan this replaces.
                if laggard.is_none_or(|(lcy, _)| cy < lcy) {
                    laggard = Some((cy, i));
                }
                if i == self.token {
                    token_active = true;
                }
            }
        }
        let Some((lcy, lidx)) = laggard else { return };
        if !token_active {
            if self.token != lidx && !self.lost_wakeup_swallows() {
                self.token = lidx;
                self.epoch += 1;
                self.kernel
                    .log
                    .note(|| crate::commit::Commit::TokenRotate { core: lidx });
            }
            return;
        }
        if self.machine.cycles(self.token) > lcy + self.window
            && lidx != self.token
            && !self.lost_wakeup_swallows()
        {
            self.token = lidx;
            self.epoch += 1;
            self.kernel
                .log
                .note(|| crate::commit::Commit::TokenRotate { core: lidx });
        }
    }
}

/// The control block shared by all workers.
pub struct SimCtl {
    /// The state.
    pub inner: Mutex<SimInner>,
    /// Wakes waiting workers on scheduling changes.
    pub cv: Condvar,
}

impl SimCtl {
    /// Wrap inner state.
    #[must_use]
    pub fn new(inner: SimInner) -> Arc<Self> {
        Arc::new(SimCtl {
            inner: Mutex::new(inner),
            cv: Condvar::new(),
        })
    }
}

/// A user program: the body of a simulated thread.
pub trait UserProgram: Send + 'static {
    /// Run to completion against the environment.
    fn run(&mut self, env: &mut UserEnv);
}

impl<F: FnMut(&mut UserEnv) + Send + 'static> UserProgram for F {
    fn run(&mut self, env: &mut UserEnv) {
        self(env);
    }
}

/// Slots in the per-env direct-mapped translation cache.
const TCACHE_SLOTS: usize = 64;

/// One cached positive translation, validated against the owning
/// [`tp_sim::PhysMap`]'s generation counter.
#[derive(Clone, Copy)]
struct TransEntry {
    vpn: u64,
    pa_base: u64,
    gen: u64,
    valid: bool,
}

/// Per-environment lookup state: the thread's (immutable) VSpace/ASID ids
/// and a small direct-mapped translation cache, so the probe hot path
/// skips the kernel page-table walk on repeated addresses.
struct EnvCache {
    ids: Option<(VSpaceId, Asid)>,
    entries: [TransEntry; TCACHE_SLOTS],
}

impl EnvCache {
    fn new() -> Self {
        EnvCache {
            ids: None,
            entries: [TransEntry {
                vpn: 0,
                pa_base: 0,
                gen: 0,
                valid: false,
            }; TCACHE_SLOTS],
        }
    }
}

/// A precomputed, translated probe sweep bound to one environment: the
/// simulator-side [`SweepPlan`] plus the page-table generation it was
/// translated at. [`UserEnv::probe_batch`] refuses a stale plan (the
/// mappings changed since it was built), in which case the caller rebuilds
/// with [`UserEnv::build_plan`].
#[derive(Debug, Clone)]
pub struct EnvPlan {
    plan: SweepPlan,
    gen: u64,
}

impl EnvPlan {
    /// Number of planned probe lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// Whether the plan has no lines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }
}

/// The mediated hardware/kernel interface handed to user programs.
pub struct UserEnv {
    ctl: Arc<SimCtl>,
    /// This thread.
    pub tcb: TcbId,
    /// The core the thread is pinned to.
    pub core: usize,
    /// The thread's domain.
    pub domain: DomainId,
    cfg: PlatformConfig,
    colors: ColorSet,
    cache: RefCell<EnvCache>,
}

impl UserEnv {
    /// Build an environment for a thread (used by the system builder).
    #[must_use]
    pub fn new(
        ctl: Arc<SimCtl>,
        tcb: TcbId,
        core: usize,
        domain: DomainId,
        cfg: PlatformConfig,
        colors: ColorSet,
    ) -> Self {
        UserEnv {
            ctl,
            tcb,
            core,
            domain,
            cfg,
            colors,
            cache: RefCell::new(EnvCache::new()),
        }
    }

    /// Platform configuration.
    #[must_use]
    pub fn platform(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// The domain's page colours.
    #[must_use]
    pub fn my_colors(&self) -> ColorSet {
        self.colors
    }

    fn wait_turn<'a>(&self, g: &mut parking_lot::MutexGuard<'a, SimInner>) {
        loop {
            if g.stop {
                std::panic::panic_any(SimExit);
            }
            if g.kernel.cores[self.core].cur == Some(self.tcb) && g.token == self.core {
                return;
            }
            if !g.any_current() {
                g.idle_advance();
                g.rotate_token();
                self.ctl.cv.notify_all();
                continue;
            }
            if tp_exec::on_coroutine() {
                // Cooperative executor: hand the host worker back to the
                // driver instead of blocking it. The simulation lock is
                // released for the duration of the suspend (the task may be
                // resumed by a different worker thread) and re-acquired
                // before the predicate is re-checked. Watchdog duties live
                // in the driver's decide loop under this executor.
                g.unlocked(tp_exec::suspend);
                continue;
            }
            match g.deadline {
                None => self.ctl.cv.wait(g),
                Some(d) => {
                    // Watchdog: poll the deadline with short timed waits so
                    // a simulation making no progress (every thread parked
                    // here) still aborts instead of hanging forever.
                    let notified = self
                        .ctl
                        .cv
                        .wait_for(g, std::time::Duration::from_millis(100));
                    if !notified && !g.stop && std::time::Instant::now() >= d {
                        g.stop = true;
                        if g.error.is_none() {
                            g.error = Some(
                                "watchdog: wall-clock deadline exceeded with no \
                                 scheduling progress"
                                    .to_string(),
                            );
                        }
                        g.epoch += 1;
                        self.ctl.cv.notify_all();
                    }
                }
            }
        }
    }

    /// The armed-stall endgame: hold the simulated core without yielding,
    /// sleeping off-lock so other host threads can observe the hang. Exits
    /// only when the simulation stops — normally via the watchdog noticing
    /// the expired deadline (checked here too, for single-threaded cells
    /// with no other waiter to run the `wait_turn` watchdog).
    fn stall_loop(&self) -> ! {
        loop {
            std::thread::sleep(std::time::Duration::from_millis(10));
            let mut g = self.ctl.inner.lock();
            if g.stop {
                std::panic::panic_any(SimExit);
            }
            if let Some(d) = g.deadline {
                if std::time::Instant::now() >= d {
                    g.stop = true;
                    if g.error.is_none() {
                        g.error = Some(
                            "watchdog: environment stopped yielding (wall-clock \
                             deadline exceeded)"
                                .to_string(),
                        );
                    }
                    g.epoch += 1;
                    self.ctl.cv.notify_all();
                    std::panic::panic_any(SimExit);
                }
            }
        }
    }

    fn op<R>(&self, sched: bool, f: impl FnOnce(&mut SimInner) -> R) -> R {
        let mut g = self.ctl.inner.lock();
        self.wait_turn(&mut g);
        let e0 = g.epoch;
        let r = f(&mut g);
        if sched {
            g.epoch += 1;
        }
        g.process_due(self.core);
        if !g.any_current() {
            g.idle_advance();
        }
        g.rotate_token();
        if g.epoch != e0 || g.stop {
            self.ctl.cv.notify_all();
        }
        r
    }

    /// Read the cycle counter (models `rdtsc` / `PMCCNTR`, including its
    /// cost and a little jitter).
    pub fn now(&self) -> u64 {
        self.op(false, |g| {
            let j = g.machine.rng().below(3);
            g.machine.advance(self.core, 20 + j);
            g.machine.cycles(self.core)
        })
    }

    /// The thread's VSpace and ASID, resolved once (both are fixed at
    /// thread creation).
    fn cached_ids(&self, g: &SimInner) -> (VSpaceId, Asid) {
        let mut cache = self.cache.borrow_mut();
        if let Some(ids) = cache.ids {
            return ids;
        }
        let t = g.kernel.tcbs.get(self.tcb.0).expect("live thread");
        let asid = g.kernel.vspaces.get(t.vspace.0).expect("live vspace").asid;
        cache.ids = Some((t.vspace, asid));
        (t.vspace, asid)
    }

    /// Translate through the per-env cache; falls back to the kernel page
    /// table on a miss or when the mapping generation moved.
    ///
    /// # Panics
    /// Panics on a page fault, like real attack code would.
    fn translate_cached(&self, g: &SimInner, va: VAddr) -> (PAddr, Asid) {
        let (vs, asid) = self.cached_ids(g);
        let map = &g.kernel.vspaces.get(vs.0).expect("live vspace").map;
        let gen = map.generation();
        let vpn = va.vpn();
        let mut cache = self.cache.borrow_mut();
        let e = &mut cache.entries[(vpn as usize) % TCACHE_SLOTS];
        if e.valid && e.vpn == vpn && e.gen == gen {
            return (PAddr(e.pa_base + va.page_offset()), asid);
        }
        let pa = map
            .translate(va)
            .unwrap_or_else(|| panic!("page fault at {va:?}"));
        *e = TransEntry {
            vpn,
            pa_base: pa.0 - va.page_offset(),
            gen,
            valid: true,
        };
        (pa, asid)
    }

    /// Load from a user virtual address; returns the access latency in
    /// cycles (what a real attacker measures with two counter reads).
    pub fn load(&self, va: VAddr) -> u64 {
        self.op(false, |g| {
            let (pa, asid) = self.translate_cached(g, va);
            g.machine.data_access(self.core, asid, va, pa, false, false)
        })
    }

    /// Store to a user virtual address; returns the latency.
    pub fn store(&self, va: VAddr) -> u64 {
        self.op(false, |g| {
            let (pa, asid) = self.translate_cached(g, va);
            g.machine.data_access(self.core, asid, va, pa, true, false)
        })
    }

    /// Fetch/execute an instruction at a user virtual address.
    pub fn exec(&self, va: VAddr) -> u64 {
        self.op(false, |g| {
            let (pa, asid) = self.translate_cached(g, va);
            g.machine.insn_fetch(self.core, asid, va, pa, false)
        })
    }

    /// The per-access epilogue of a batched sweep, mirroring the tail of
    /// [`UserEnv::op`]: deliver due events, skip idle time, rotate the
    /// cross-core token and wake waiters on any scheduling change.
    fn sweep_tail(&self, g: &mut parking_lot::MutexGuard<'_, SimInner>, last_epoch: &mut u64) {
        g.process_due(self.core);
        if !g.any_current() {
            g.idle_advance();
        }
        g.rotate_token();
        if g.epoch != *last_epoch || g.stop {
            self.ctl.cv.notify_all();
            *last_epoch = g.epoch;
        }
    }

    /// Re-check admission before the next access of a sweep (the batched
    /// equivalent of the `wait_turn` at the top of every scalar op).
    fn resume_turn(&self, g: &mut parking_lot::MutexGuard<'_, SimInner>, last_epoch: &mut u64) {
        if g.stop || g.kernel.cores[self.core].cur != Some(self.tcb) || g.token != self.core {
            self.wait_turn(g);
            *last_epoch = g.epoch;
        }
    }

    /// Sweep fast-path state: whether this thread is the only runnable one
    /// (so token rotation and idle skipping are provably no-ops) and the
    /// cycle at which the epilogue next has real work (the earliest due
    /// event or the cycle budget). Until that trigger, the full per-line
    /// epilogue would do exactly nothing — events are only created *by*
    /// event handlers and syscalls, neither of which can run between the
    /// lines of a sweep — so skipping it is bit-equivalent to the scalar
    /// path.
    fn sweep_fast_state(&self, g: &SimInner) -> (bool, u64) {
        let single = g.kernel.cores.iter().filter(|c| c.cur.is_some()).count() == 1;
        let trigger = g
            .next_event_cycle(self.core)
            .unwrap_or(u64::MAX)
            .min(g.max_cycles);
        (single, trigger)
    }

    /// Precompute a probe sweep over `vas`: translate every address and
    /// build the simulator-side [`SweepPlan`] (with the instruction-side L1
    /// geometry when `insn`). One untimed environment operation, however
    /// long the list.
    #[must_use]
    pub fn build_plan(&self, vas: &[VAddr], insn: bool) -> EnvPlan {
        self.op(false, |g| {
            let mut pas = Vec::with_capacity(vas.len());
            for &va in vas {
                pas.push(self.translate_cached(g, va).0);
            }
            let (vs, _) = self.cached_ids(g);
            let gen = g
                .kernel
                .vspaces
                .get(vs.0)
                .expect("live vspace")
                .map
                .generation();
            EnvPlan {
                plan: g.machine.plan_sweep(insn, &pas),
                gen,
            }
        })
    }

    /// Run the first `n` lines of a precomputed probe sweep, taking the
    /// simulation lock and the scheduler turn **once** for the whole sweep
    /// instead of once per line. Returns the total latency, or `None` when
    /// the plan is stale (the address space changed since [`UserEnv::build_plan`];
    /// rebuild and retry). Per-line latencies are appended to `costs` when
    /// provided.
    ///
    /// Semantics are identical to issuing the lines as scalar
    /// [`UserEnv::load`]/[`UserEnv::store`]/[`UserEnv::exec`] calls — due
    /// events are still delivered between lines and the cross-core window
    /// token still rotates — only the lock/turn bookkeeping is hoisted out
    /// of the loop. The workspace property tests pin this equivalence
    /// bit-for-bit.
    pub fn probe_batch(
        &self,
        plan: &EnvPlan,
        n: usize,
        write: bool,
        mut costs: Option<&mut Vec<u64>>,
    ) -> Option<u64> {
        let lines = &plan.plan.lines()[..n.min(plan.plan.len())];
        if lines.is_empty() {
            return Some(0);
        }
        let insn = plan.plan.is_insn();
        let mut g = self.ctl.inner.lock();
        self.wait_turn(&mut g);
        let (vs, asid) = self.cached_ids(&g);
        let gen = g
            .kernel
            .vspaces
            .get(vs.0)
            .expect("live vspace")
            .map
            .generation();
        if gen != plan.gen {
            return None;
        }
        let mut last_epoch = g.epoch;
        let mut total = 0u64;
        let (mut fast, mut trigger) = self.sweep_fast_state(&g);
        for (i, ln) in lines.iter().enumerate() {
            if i > 0 && (!fast || g.machine.cycles(self.core) >= trigger) {
                self.sweep_tail(&mut g, &mut last_epoch);
                self.resume_turn(&mut g, &mut last_epoch);
                (fast, trigger) = self.sweep_fast_state(&g);
            }
            let (c, _) = g
                .machine
                .access_planned(self.core, asid, ln, write, false, insn);
            total += c;
            if let Some(costs) = costs.as_deref_mut() {
                costs.push(c);
            }
        }
        self.sweep_tail(&mut g, &mut last_epoch);
        Some(total)
    }

    /// Load every address in `vas` under a single lock/turn acquisition;
    /// returns the total latency. The unplanned sibling of
    /// [`UserEnv::probe_batch`] for ad-hoc sweeps whose addresses are not
    /// reused across samples.
    pub fn load_sweep(&self, vas: &[VAddr]) -> u64 {
        self.access_sweep_inner(vas.iter().map(|&va| (va, false)), 0)
    }

    /// Run a mixed load/store sweep (`true` = store) with `compute` pure
    /// cycles after each access, under a single lock/turn acquisition.
    /// Returns the total access latency (compute cycles excluded, as with
    /// scalar [`UserEnv::compute`]).
    pub fn access_sweep(&self, ops: &[(VAddr, bool)], compute: u64) -> u64 {
        self.access_sweep_inner(ops.iter().copied(), compute)
    }

    fn access_sweep_inner(&self, ops: impl Iterator<Item = (VAddr, bool)>, compute: u64) -> u64 {
        let mut g = self.ctl.inner.lock();
        self.wait_turn(&mut g);
        let mut last_epoch = g.epoch;
        let mut total = 0u64;
        let (mut fast, mut trigger) = self.sweep_fast_state(&g);
        for (i, (va, write)) in ops.enumerate() {
            if i > 0 && (!fast || g.machine.cycles(self.core) >= trigger) {
                self.sweep_tail(&mut g, &mut last_epoch);
                self.resume_turn(&mut g, &mut last_epoch);
                (fast, trigger) = self.sweep_fast_state(&g);
            }
            let (pa, asid) = self.translate_cached(&g, va);
            total += g.machine.data_access(self.core, asid, va, pa, write, false);
            if compute > 0 {
                if !fast || g.machine.cycles(self.core) >= trigger {
                    self.sweep_tail(&mut g, &mut last_epoch);
                    self.resume_turn(&mut g, &mut last_epoch);
                    (fast, trigger) = self.sweep_fast_state(&g);
                }
                g.machine.advance(self.core, compute);
            }
        }
        self.sweep_tail(&mut g, &mut last_epoch);
        total
    }

    /// Execute a branch instruction; returns its latency.
    pub fn branch(&self, pc: VAddr, target: VAddr, taken: bool, conditional: bool) -> u64 {
        self.op(false, |g| {
            g.machine.branch(self.core, pc, target, taken, conditional)
        })
    }

    /// Pure computation for `n` cycles.
    pub fn compute(&self, n: u64) {
        self.op(false, |g| g.machine.advance(self.core, n));
    }

    /// Map `n` fresh pages of the domain's (coloured) memory; returns the
    /// base VA and backing frames. Untimed setup operation.
    ///
    /// # Panics
    /// Panics if the domain pool is exhausted.
    pub fn map_pages(&self, n: usize) -> (VAddr, Vec<u64>) {
        self.op(false, |g| {
            g.kernel
                .map_user_pages(self.tcb, n)
                .expect("domain pool exhausted")
        })
    }

    /// Translation oracle: the physical address behind a user VA.
    ///
    /// Real attackers recover this information with timing-based
    /// eviction-set construction (e.g. Liu et al. (2015)); the oracle
    /// stands in for that untimed profiling phase.
    #[must_use]
    pub fn translate(&self, va: VAddr) -> PAddr {
        self.op(false, |g| self.translate_cached(g, va).0)
    }

    /// Issue a system call. Blocking calls return when the thread is next
    /// scheduled with the delivered value.
    ///
    /// # Errors
    /// Kernel errors (bad capability, rights, types) are returned verbatim.
    pub fn syscall(&self, sys: Syscall) -> Result<u64, KernelError> {
        let mut stall_after = None;
        let ret = self.op(true, |g| {
            match g.env_fault_tick() {
                Some(EnvFault::Panic(n)) => panic!("injected fault: env-panic at syscall {n}"),
                Some(EnvFault::Stall(n)) => stall_after = Some(n),
                Some(EnvFault::StackSmash(n)) => smash_stack(n),
                None => {}
            }
            let SimInner {
                machine, kernel, ..
            } = g;
            let out = kernel.syscall(machine, self.core, self.tcb, sys);
            if let Some((at, irq)) = out.arm_timer {
                g.push_event(self.core, at, EvKind::Timer { irq });
            }
            out.ret
        });
        if stall_after.is_some() {
            // The injected stall: the syscall completed, but the environment
            // never hands control back to the program.
            self.stall_loop();
        }
        match ret {
            SysReturn::Val(v) => Ok(v),
            SysReturn::Err(e) => Err(e),
            SysReturn::Blocked => Ok(self.wait_unblocked()),
        }
    }

    fn wait_unblocked(&self) -> u64 {
        let mut g = self.ctl.inner.lock();
        self.wait_turn(&mut g);
        debug_assert_eq!(
            g.kernel.tcbs.get(self.tcb.0).map(|t| t.state),
            Some(ThreadState::Ready)
        );
        g.kernel.tcbs.get(self.tcb.0).expect("live thread").ipc_msg
    }

    /// Yield the rest of the slice within the domain.
    pub fn yield_now(&self) {
        let _ = self.syscall(Syscall::Yield);
    }

    /// Sleep until the domain's next time slot.
    pub fn sleep_slice(&self) {
        let _ = self.syscall(Syscall::SleepSlice);
    }

    /// Spin on the cycle counter until this thread is preempted (or another
    /// kernel event interrupts it) and then rescheduled.
    ///
    /// Returns `(gap_start, resume)`: the cycle at which the thread lost
    /// the core and the cycle at which it got it back. This is the O(1)
    /// equivalent of the receiver loop in §5.3.4 ("observes its progress by
    /// monitoring a cycle counter, waiting for a large jump").
    pub fn wait_preempt(&self) -> (u64, u64) {
        // A spinning receiver's loop period: counter jumps smaller than
        // this are indistinguishable from normal execution. Kernel events
        // that consume no observable time (e.g. an interrupt deferred by
        // partitioning) therefore do NOT end the wait.
        const OBSERVABLE: u64 = 150;
        let mut g = self.ctl.inner.lock();
        let mut fault_checked = false;
        loop {
            self.wait_turn(&mut g);
            if !fault_checked {
                // The wait counts as one environment interaction for the
                // fault plane (ticked after `wait_turn`, so ordinals follow
                // the deterministic simulated schedule, not host threading).
                // Harness environments that never issue explicit syscalls
                // still block here, so env faults reach every real cell.
                fault_checked = true;
                match g.env_fault_tick() {
                    Some(EnvFault::Panic(n)) => {
                        panic!("injected fault: env-panic at syscall {n}")
                    }
                    Some(EnvFault::Stall(_)) => {
                        drop(g);
                        self.stall_loop();
                    }
                    Some(EnvFault::StackSmash(n)) => smash_stack(n),
                    None => {}
                }
            }
            let Some(evc) = g.next_event_cycle(self.core) else {
                // Nothing will ever preempt us: treat as end of simulation.
                g.stop = true;
                g.epoch += 1;
                self.ctl.cv.notify_all();
                std::panic::panic_any(SimExit);
            };
            let now = g.machine.cycles(self.core);
            if now < evc {
                g.machine.advance(self.core, evc - now);
            }
            let before = g.machine.cycles(self.core);
            g.process_due(self.core);
            if !g.any_current() {
                g.idle_advance();
            }
            g.rotate_token();
            self.ctl.cv.notify_all();
            if g.kernel.cores[self.core].cur != Some(self.tcb) {
                // Preempted: wait to be scheduled again.
                self.wait_turn(&mut g);
                return (before, g.machine.cycles(self.core));
            }
            let after = g.machine.cycles(self.core);
            if after - before > OBSERVABLE {
                // An in-slice kernel intrusion (e.g. interrupt handling)
                // long enough to show up as a cycle-counter jump.
                return (before, after);
            }
            // Invisible event: keep spinning.
        }
    }

    /// Arm the domain's one-shot timer IRQ (capability index `cap`) to fire
    /// after `us` microseconds.
    ///
    /// # Errors
    /// Propagates kernel errors.
    pub fn set_timer_us(&self, cap: usize, us: f64) -> Result<u64, KernelError> {
        self.syscall(Syscall::SetTimer { cap, us })
    }
}

/// One program to run: (tcb, core, domain, colors, program, primary).
pub type ProgramSpec = (TcbId, usize, DomainId, ColorSet, Box<dyn UserProgram>, bool);

/// How [`run_programs_with`] maps simulated environments onto host threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The cooperative executor: N environments as stackful coroutines
    /// multiplexed over M host worker threads. The default.
    Coop {
        /// Host worker threads. `0` means auto: `TP_THREADS` if set, else
        /// the host's available parallelism.
        workers: usize,
    },
    /// The original thread-per-environment executor, kept as a differential
    /// oracle and portability escape hatch.
    Threads,
}

impl Default for ExecMode {
    fn default() -> Self {
        default_exec_mode()
    }
}

/// The process-wide default executor: cooperative, unless
/// `TP_EXECUTOR=threads` selects the legacy engine. Read once.
pub fn default_exec_mode() -> ExecMode {
    static MODE: std::sync::OnceLock<ExecMode> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("TP_EXECUTOR").as_deref() {
        Ok("threads") => ExecMode::Threads,
        _ => ExecMode::Coop { workers: 0 },
    })
}

/// Resolve `Coop { workers: 0 }`: `TP_THREADS`, else host parallelism.
fn auto_workers() -> usize {
    std::env::var("TP_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Run the set of programs to completion under the default executor (see
/// [`default_exec_mode`]) and return the final state.
///
/// The simulation stops when all primary programs finish, `max_cycles`
/// elapses, or the system goes permanently idle.
#[must_use]
pub fn run_programs(ctl: Arc<SimCtl>, programs: Vec<ProgramSpec>) -> Arc<SimCtl> {
    run_programs_with(ctl, programs, default_exec_mode())
}

/// [`run_programs`] with an explicit executor choice.
#[must_use]
pub fn run_programs_with(
    ctl: Arc<SimCtl>,
    programs: Vec<ProgramSpec>,
    mode: ExecMode,
) -> Arc<SimCtl> {
    match mode {
        ExecMode::Threads => run_programs_threads(ctl, programs),
        ExecMode::Coop { workers } => {
            let m = if workers == 0 {
                auto_workers()
            } else {
                workers
            };
            run_programs_coop(ctl, programs, m)
        }
    }
}

/// Shared exit bookkeeping for a finished environment, identical across
/// executors: classify the unwind payload (a [`SimExit`] is a normal stop,
/// anything else is the cell's first error), retire the thread in the
/// kernel, count down primaries and stop when none remain, then let the
/// simulation reschedule.
fn finish_program(
    ctl: &SimCtl,
    tcb: TcbId,
    primary: bool,
    payload: Option<Box<dyn std::any::Any + Send>>,
) {
    use std::sync::atomic::Ordering::Relaxed;
    let mut g = ctl.inner.lock();
    if let Some(p) = payload {
        if !p.is::<SimExit>() {
            let (env, msg) = match p.downcast::<EnvPanicPayload>() {
                Ok(ep) => (ep.env, ep.message),
                Err(p) => (
                    tcb.0 as u64,
                    p.downcast_ref::<String>()
                        .cloned()
                        .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
                        .unwrap_or_else(|| "worker panicked".to_string()),
                ),
            };
            if msg.starts_with("stack overflow") {
                STACK_OVERFLOWS.fetch_add(1, Relaxed);
            }
            if primary {
                // A dead primary ends the cell: the result it was supposed
                // to produce cannot exist. Surface the error, naming the
                // failing environment.
                g.stop = true;
                if g.error.is_none() {
                    g.error = Some(format!("{msg} (env {env})"));
                }
            } else {
                // A dead daemon is isolated: record the per-env outcome and
                // let the siblings keep running. `thread_exited` below
                // retires it from the scheduler like a normal exit.
                ENV_FAILED.fetch_add(1, Relaxed);
                g.env_failures.push((env, msg));
            }
        }
    }
    let SimInner {
        machine, kernel, ..
    } = &mut *g;
    kernel.thread_exited(machine, tcb);
    if primary {
        g.primaries_left = g.primaries_left.saturating_sub(1);
        if g.primaries_left == 0 {
            g.stop = true;
        }
    }
    g.epoch += 1;
    if !g.any_current() {
        g.idle_advance();
    }
    g.rotate_token();
    ctl.cv.notify_all();
}

/// Tag a failing environment's unwind payload with its env id (unless it is
/// a normal [`SimExit`] or already tagged), so everything downstream —
/// [`finish_program`], `Coro::take_panic`, supervisor quarantine records —
/// can name the env.
fn wrap_env_payload(tcb: TcbId, p: Box<dyn std::any::Any + Send>) -> Box<dyn std::any::Any + Send> {
    if p.is::<SimExit>() || p.is::<EnvPanicPayload>() {
        return p;
    }
    let message = p
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "environment panicked".to_string());
    Box::new(EnvPanicPayload {
        env: tcb.0 as u64,
        message,
    })
}

/// The legacy executor: one host thread per program, parked in `wait_turn`
/// on the scheduler condvar whenever its environment is not admitted.
fn run_programs_threads(ctl: Arc<SimCtl>, programs: Vec<ProgramSpec>) -> Arc<SimCtl> {
    install_quiet_panic_hook();
    let cfg = ctl.inner.lock().machine.cfg;
    {
        let mut g = ctl.inner.lock();
        g.primaries_left = programs.iter().filter(|p| p.5).count();
    }
    let mut handles = Vec::new();
    for (tcb, core, domain, colors, mut prog, primary) in programs {
        let ctl2 = Arc::clone(&ctl);
        let cfg2 = cfg;
        handles.push(std::thread::spawn(move || {
            let mut env = UserEnv::new(Arc::clone(&ctl2), tcb, core, domain, cfg2, colors);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                prog.run(&mut env);
            }));
            finish_program(
                &ctl2,
                tcb,
                primary,
                result.err().map(|p| wrap_env_payload(tcb, p)),
            );
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    ctl
}

/// One environment task owned by the cooperative executor.
struct CoopTask {
    /// The coroutine, `None` only transiently while a worker runs it.
    coro: Option<tp_exec::Coro>,
    tcb: TcbId,
    primary: bool,
    done: bool,
}

/// Executor state shared by the M workers.
struct CoopState {
    tasks: Vec<CoopTask>,
    /// `tcb.0` → task index, for the driver's admission lookup.
    by_tcb: Vec<Option<usize>>,
    /// A worker currently holds the driver role (decides and runs the next
    /// task). Exactly one at a time: with a single window token at most one
    /// environment is admissible anyway, so serializing the drive loses no
    /// parallelism and makes results independent of M by construction.
    driving: bool,
    /// Tasks not yet run to completion.
    remaining: usize,
    /// Completed task drives, for the `worker-kill@N` trigger ordinal
    /// (deterministic: drives are serialized by `driving`).
    drives: u64,
    /// Armed `worker-kill@N` fault: the worker that completes the `N`-th
    /// drive exits instead of looping. Its suspended coroutines stay in
    /// `tasks` and are adopted by the surviving workers — results must be
    /// bit-identical (worker identity is invisible by construction).
    kill_at: Option<u64>,
    /// The kill fired (one worker dies at most).
    kill_fired: bool,
    /// Workers still in their drive loop; the kill is suppressed rather
    /// than orphan the executor when only one worker remains.
    workers_alive: usize,
}

impl CoopState {
    fn task_of(&self, tcb: TcbId) -> Option<usize> {
        self.by_tcb.get(tcb.0).copied().flatten()
    }
}

/// What the driver decided to do next.
enum Pick {
    /// Resume the task at this index.
    Run(usize),
    /// Every task has completed; the executor is done.
    Done,
}

/// Choose the next task as a pure function of simulation state: the thread
/// the kernel has scheduled on the token-holding core. Advances idle time
/// and rotates the token exactly like the blocked-thread path of the legacy
/// executor, and owns the wall-clock watchdog when a deadline is armed.
/// Once the simulation stops, drains the remaining tasks in ascending index
/// order so each unwinds (via [`SimExit`] at its next admission check) and
/// releases its resources.
fn coop_decide(g: &mut parking_lot::MutexGuard<'_, SimInner>, st: &CoopState) -> Pick {
    loop {
        if st.remaining == 0 {
            return Pick::Done;
        }
        if g.stop {
            let idx = st
                .tasks
                .iter()
                .position(|t| !t.done)
                .expect("remaining > 0 implies an unfinished task");
            return Pick::Run(idx);
        }
        if let Some(d) = g.deadline {
            if std::time::Instant::now() >= d {
                g.stop = true;
                if g.error.is_none() {
                    g.error = Some(
                        "watchdog: wall-clock deadline exceeded with no \
                         scheduling progress"
                            .to_string(),
                    );
                }
                g.epoch += 1;
                continue;
            }
        }
        let token = g.token;
        if let Some(tcb) = g.kernel.cores[token].cur {
            match st.task_of(tcb).filter(|&i| !st.tasks[i].done) {
                Some(idx) => return Pick::Run(idx),
                None => {
                    // A scheduled thread with no live task violates the
                    // executor invariant (threads retire via
                    // `thread_exited` before their task completes).
                    // Degrade to a clean stop instead of spinning.
                    g.stop = true;
                    if g.error.is_none() {
                        g.error = Some("executor: scheduled thread has no live task".to_string());
                    }
                    g.epoch += 1;
                    continue;
                }
            }
        }
        if !g.any_current() {
            // May stop the simulation (permanently idle / cycle budget).
            g.idle_advance();
            g.rotate_token();
            continue;
        }
        // The token core is inactive but some core is running: the rotate
        // moves the token to the laggard active core, so the next iteration
        // finds a scheduled thread there. In a healthy simulation that move
        // is unconditional (the laggard scan only considers active cores,
        // and the token core is not one of them) — so a rotate that changes
        // nothing proves the scheduler is wedged: no environment can ever
        // be admitted again. Classify immediately and deterministically,
        // from simulation state alone, instead of hanging until the
        // wall-clock watchdog.
        let before = (g.token, g.epoch);
        g.rotate_token();
        if (g.token, g.epoch) == before {
            let waiting: Vec<u64> = st
                .tasks
                .iter()
                .filter(|t| !t.done)
                .map(|t| t.tcb.0 as u64)
                .collect();
            g.note_deadlock(waiting);
        }
    }
}

/// The cooperative executor: N coroutines over M workers.
///
/// Workers take turns holding the driver role (serialized by
/// `CoopState::driving`): decide the next admissible task under the
/// simulation lock, resume it with **no** locks held (the task re-acquires
/// the simulation lock inside its env ops and releases it across suspends),
/// and on completion run the shared exit bookkeeping. Everything observable
/// is decided by simulation state, never by which worker moved first.
fn run_programs_coop(ctl: Arc<SimCtl>, programs: Vec<ProgramSpec>, workers: usize) -> Arc<SimCtl> {
    install_quiet_panic_hook();
    if programs.is_empty() {
        return ctl;
    }
    let (cfg, kill_at) = {
        let mut g = ctl.inner.lock();
        g.primaries_left = programs.iter().filter(|p| p.5).count();
        (g.machine.cfg, g.fault_worker_kill_at)
    };
    let stack_bytes = tp_exec::default_stack_bytes();
    let mut tasks = Vec::with_capacity(programs.len());
    let mut by_tcb: Vec<Option<usize>> = Vec::new();
    for (idx, (tcb, core, domain, colors, mut prog, primary)) in programs.into_iter().enumerate() {
        let ctl2 = Arc::clone(&ctl);
        let coro = tp_exec::Coro::with_stack(stack_bytes, move || {
            let mut env = UserEnv::new(ctl2, tcb, core, domain, cfg, colors);
            // Catch-and-retag so the payload crossing `take_panic` names
            // the env; `wrap_env_payload` passes SimExit through untouched.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prog.run(&mut env)));
            if let Err(p) = r {
                std::panic::resume_unwind(wrap_env_payload(tcb, p));
            }
        });
        if by_tcb.len() <= tcb.0 {
            by_tcb.resize(tcb.0 + 1, None);
        }
        by_tcb[tcb.0] = Some(idx);
        tasks.push(CoopTask {
            coro: Some(coro),
            tcb,
            primary,
            done: false,
        });
    }
    let n = tasks.len();
    let m = workers.clamp(1, n);
    let exec = Arc::new((
        Mutex::new(CoopState {
            tasks,
            by_tcb,
            driving: false,
            remaining: n,
            drives: 0,
            kill_at,
            kill_fired: false,
            workers_alive: m,
        }),
        Condvar::new(),
    ));
    let mut handles = Vec::with_capacity(m);
    for _ in 0..m {
        let ctl2 = Arc::clone(&ctl);
        let exec2 = Arc::clone(&exec);
        handles.push(std::thread::spawn(move || coop_worker(&ctl2, &exec2)));
    }
    for h in handles {
        let _ = h.join();
    }
    ctl
}

/// One worker of the cooperative executor; see [`run_programs_coop`].
fn coop_worker(ctl: &SimCtl, exec: &(Mutex<CoopState>, Condvar)) {
    let (lock, cv) = exec;
    loop {
        // Claim the driver role and decide the next task.
        let (idx, mut coro, tcb, primary) = {
            let mut st = lock.lock();
            loop {
                if st.remaining == 0 {
                    cv.notify_all();
                    return;
                }
                if !st.driving {
                    break;
                }
                cv.wait(&mut st);
            }
            let pick = {
                let mut g = ctl.inner.lock();
                coop_decide(&mut g, &st)
            };
            match pick {
                Pick::Done => {
                    cv.notify_all();
                    return;
                }
                Pick::Run(idx) => {
                    st.driving = true;
                    let t = &mut st.tasks[idx];
                    (
                        idx,
                        t.coro.take().expect("idle task owns its coroutine"),
                        t.tcb,
                        t.primary,
                    )
                }
            }
        };
        // Run the task lock-free: it suspends back here from `wait_turn`
        // whenever it stops being admitted, or completes (return / unwind).
        let complete = coro.resume();
        if complete {
            finish_program(ctl, tcb, primary, coro.take_panic());
        }
        let mut st = lock.lock();
        let t = &mut st.tasks[idx];
        if complete {
            t.done = true;
            st.remaining -= 1;
        } else {
            t.coro = Some(coro);
        }
        st.driving = false;
        st.drives += 1;
        // Armed worker-kill: this worker dies after the N-th drive. Its
        // state is already back in `st`, so the survivors adopt every
        // suspended coroutine transparently.
        let die = match st.kill_at {
            Some(at) if !st.kill_fired && st.drives >= at && st.workers_alive > 1 => {
                st.kill_fired = true;
                st.workers_alive -= 1;
                true
            }
            _ => false,
        };
        cv.notify_all();
        if die {
            return;
        }
    }
}

fn install_quiet_panic_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<SimExit>() {
                return;
            }
            default(info);
        }));
    });
}
