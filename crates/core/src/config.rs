//! Time-protection configuration.
//!
//! Time protection is "a collection of OS mechanisms which jointly prevent
//! interference between security domains" (§3.2). Each mechanism maps to a
//! field of [`ProtectionConfig`]; the paper's three evaluation scenarios
//! (§5.2: *raw*, *protected*, *full flush*) are provided as presets.

/// How much micro-architectural state the kernel flushes on a domain switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushMode {
    /// No flushing (the *raw* scenario).
    None,
    /// Flush on-core state only (Requirement 1): L1-D, L1-I, TLBs, branch
    /// predictor. The *protected* scenario; physically-indexed caches are
    /// handled by colouring instead.
    OnCore,
    /// Maximal architecture-supported reset: full cache hierarchy
    /// (`wbinvd` on x86; L1 + L2 clean/invalidate on Arm), branch predictor
    /// and data prefetcher disabled. The *full flush* scenario.
    Full,
}

/// Configuration of the time-protection mechanism suite.
///
/// `Copy`: the config is a handful of flags, so it travels by value inside
/// [`crate::system::SystemSpec`] and across experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtectionConfig {
    /// Partition user memory (and hence all dynamically allocated kernel
    /// data, §2.4) by page colour.
    pub color_userland: bool,
    /// Give each domain a cloned kernel image (Requirement 2).
    pub clone_kernel: bool,
    /// Flushing policy on domain switch (Requirements 1 and 4).
    pub flush: FlushMode,
    /// Pad the domain switch to this many microseconds measured from the
    /// preemption interrupt (Requirement 4). `None` disables padding.
    pub pad_us: Option<f64>,
    /// Partition interrupts between kernel images (Requirement 5).
    pub irq_partition: bool,
    /// Deterministically prefetch the residual shared kernel data before
    /// returning to userland (Requirement 3).
    pub prefetch_shared: bool,
    /// Disable the data prefetcher (the §5.3.2 follow-up experiment that
    /// shrinks the residual x86 L2 channel).
    pub disable_data_prefetcher: bool,
    /// Whether the kernel maps its own text/data with *global* TLB entries.
    /// Only possible with a single kernel image; any clone-capable
    /// ("colour-ready") kernel must use per-ASID kernel mappings, which is
    /// the source of the Arm IPC overhead in Table 5.
    pub kernel_global_mappings: bool,
}

impl ProtectionConfig {
    /// The unmitigated baseline: one shared kernel, no colouring, no
    /// flushing — mainline seL4.
    #[must_use]
    pub fn raw() -> Self {
        ProtectionConfig {
            color_userland: false,
            clone_kernel: false,
            flush: FlushMode::None,
            pad_us: None,
            irq_partition: false,
            prefetch_shared: false,
            disable_data_prefetcher: false,
            kernel_global_mappings: true,
        }
    }

    /// Full time protection: coloured userland, cloned kernels, on-core
    /// flush, shared-data prefetch and interrupt partitioning. Padding is
    /// off by default (it is policy; see [`ProtectionConfig::with_pad_us`]).
    #[must_use]
    pub fn protected() -> Self {
        ProtectionConfig {
            color_userland: true,
            clone_kernel: true,
            flush: FlushMode::OnCore,
            pad_us: None,
            irq_partition: true,
            prefetch_shared: true,
            disable_data_prefetcher: false,
            kernel_global_mappings: false,
        }
    }

    /// The *full flush* comparison scenario: maximal architected reset on
    /// every switch, no colouring or cloning.
    #[must_use]
    pub fn full_flush() -> Self {
        ProtectionConfig {
            color_userland: false,
            clone_kernel: false,
            flush: FlushMode::Full,
            pad_us: None,
            irq_partition: true,
            prefetch_shared: false,
            disable_data_prefetcher: true,
            kernel_global_mappings: true,
        }
    }

    /// A kernel *capable* of cloning (non-global kernel mappings) that does
    /// not use any protection — Table 5's "colour-ready" row.
    #[must_use]
    pub fn colour_ready() -> Self {
        ProtectionConfig {
            kernel_global_mappings: false,
            ..ProtectionConfig::raw()
        }
    }

    /// Builder-style: set the padding latency in microseconds.
    #[must_use]
    pub fn with_pad_us(mut self, pad: f64) -> Self {
        self.pad_us = Some(pad);
        self
    }

    /// Builder-style: disable the data prefetcher.
    #[must_use]
    pub fn with_prefetcher_disabled(mut self) -> Self {
        self.disable_data_prefetcher = true;
        self
    }

    /// Whether any per-switch mechanism is active (used to decide whether a
    /// thread switch between domains needs the extended path).
    #[must_use]
    pub fn needs_domain_switch_work(&self) -> bool {
        self.flush != FlushMode::None
            || self.pad_us.is_some()
            || self.irq_partition
            || self.prefetch_shared
            || self.clone_kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let raw = ProtectionConfig::raw();
        assert!(!raw.needs_domain_switch_work());
        assert!(raw.kernel_global_mappings);

        let p = ProtectionConfig::protected();
        assert!(p.clone_kernel && p.color_userland && p.irq_partition);
        assert!(!p.kernel_global_mappings, "clones forbid global mappings");
        assert_eq!(p.flush, FlushMode::OnCore);

        let f = ProtectionConfig::full_flush();
        assert_eq!(f.flush, FlushMode::Full);
        assert!(f.disable_data_prefetcher);

        let cr = ProtectionConfig::colour_ready();
        assert!(!cr.kernel_global_mappings);
        assert_eq!(cr.flush, FlushMode::None);
    }

    #[test]
    fn pad_builder() {
        let p = ProtectionConfig::protected().with_pad_us(58.8);
        assert_eq!(p.pad_us, Some(58.8));
        assert!(p.needs_domain_switch_work());
    }
}
