//! Kernel image layout and the §4.1 shared-data audit.
//!
//! A kernel image consists of text, read-only data (interrupt vectors
//! etc.), a private copy of (almost all) global data, and a stack. Cloning
//! copies all of these into user-supplied `Kernel_Memory`. What remains
//! shared between all images is the short list of items in §4.1 — about
//! 9.5 KiB per core on x64 — which the kernel prefetches deterministically
//! on every domain switch (Requirement 3).

use tp_sim::{PAddr, PlatformConfig, FRAME_SIZE};

/// Pages of kernel text.
pub const TEXT_PAGES: u64 = 16; // 64 KiB
/// Pages of read-only data (interrupt vector table etc.).
pub const RODATA_PAGES: u64 = 4; // 16 KiB
/// Pages of per-image (replicated) global data.
pub const DATA_PAGES: u64 = 4; // 16 KiB
/// Pages of kernel stack.
pub const STACK_PAGES: u64 = 1; // 4 KiB
/// Pages for the x86 "manual flush" L1-D and L1-I buffers.
pub const FLUSH_BUF_PAGES: u64 = 8; // 32 KiB each

/// The kernel's virtual base address; every image is mapped here, so the
/// kernel switch happens implicitly with the page-directory switch (§4.3).
pub const KERNEL_VBASE: u64 = 0xffff_8000_0000;

/// Physical layout of one kernel image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageLayout {
    /// First frame of the image.
    pub base_pfn: u64,
}

impl ImageLayout {
    /// Total pages of a kernel image (text + rodata + data + stack + the
    /// two manual-flush buffers).
    #[must_use]
    pub fn total_pages() -> u64 {
        TEXT_PAGES + RODATA_PAGES + DATA_PAGES + STACK_PAGES + 2 * FLUSH_BUF_PAGES
    }

    /// Physical address of the text segment.
    #[must_use]
    pub fn text(&self) -> PAddr {
        PAddr(self.base_pfn * FRAME_SIZE)
    }

    /// Physical address of the read-only data segment.
    #[must_use]
    pub fn rodata(&self) -> PAddr {
        PAddr((self.base_pfn + TEXT_PAGES) * FRAME_SIZE)
    }

    /// Physical address of the replicated global data segment.
    #[must_use]
    pub fn data(&self) -> PAddr {
        PAddr((self.base_pfn + TEXT_PAGES + RODATA_PAGES) * FRAME_SIZE)
    }

    /// Physical address of the kernel stack.
    #[must_use]
    pub fn stack(&self) -> PAddr {
        PAddr((self.base_pfn + TEXT_PAGES + RODATA_PAGES + DATA_PAGES) * FRAME_SIZE)
    }

    /// Physical address of the manual L1-D flush buffer.
    #[must_use]
    pub fn l1d_buf(&self) -> PAddr {
        PAddr((self.base_pfn + TEXT_PAGES + RODATA_PAGES + DATA_PAGES + STACK_PAGES) * FRAME_SIZE)
    }

    /// Physical address of the manual L1-I flush buffer.
    #[must_use]
    pub fn l1i_buf(&self) -> PAddr {
        PAddr(
            (self.base_pfn
                + TEXT_PAGES
                + RODATA_PAGES
                + DATA_PAGES
                + STACK_PAGES
                + FLUSH_BUF_PAGES)
                * FRAME_SIZE,
        )
    }

    /// Kernel virtual address corresponding to physical `pa` inside this
    /// image (all images are mapped at [`KERNEL_VBASE`]).
    #[must_use]
    pub fn kva(&self, pa: PAddr) -> tp_sim::VAddr {
        tp_sim::VAddr(KERNEL_VBASE + (pa.0 - self.base_pfn * FRAME_SIZE))
    }

    /// All frames of the image.
    pub fn frames(&self) -> impl Iterator<Item = u64> {
        let base = self.base_pfn;
        (0..Self::total_pages()).map(move |i| base + i)
    }
}

/// The frames of a kernel image, section by section.
///
/// The boot image occupies contiguous physical memory, but a *cloned* image
/// lives in user-supplied `Kernel_Memory` drawn from a colour pool, whose
/// frame numbers form an arithmetic sequence (colours interleave every
/// page) — the kernel's own address space maps them virtually contiguous at
/// [`KERNEL_VBASE`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageFrames {
    /// Text frames.
    pub text: Vec<u64>,
    /// Read-only data frames.
    pub rodata: Vec<u64>,
    /// Replicated global data frames.
    pub data: Vec<u64>,
    /// Stack frames.
    pub stack: Vec<u64>,
    /// Manual L1-D flush buffer frames.
    pub l1d_buf: Vec<u64>,
    /// Manual L1-I flush buffer frames.
    pub l1i_buf: Vec<u64>,
}

impl ImageFrames {
    /// Build from a contiguous region (the boot image).
    #[must_use]
    pub fn contiguous(base_pfn: u64) -> Self {
        let mut next = base_pfn;
        let mut take = |n: u64| {
            let v: Vec<u64> = (next..next + n).collect();
            next += n;
            v
        };
        ImageFrames {
            text: take(TEXT_PAGES),
            rodata: take(RODATA_PAGES),
            data: take(DATA_PAGES),
            stack: take(STACK_PAGES),
            l1d_buf: take(FLUSH_BUF_PAGES),
            l1i_buf: take(FLUSH_BUF_PAGES),
        }
    }

    /// Build from an arbitrary frame list (a cloned image).
    ///
    /// # Panics
    /// Panics if fewer than [`ImageLayout::total_pages`] frames are given.
    #[must_use]
    pub fn from_frames(frames: &[u64]) -> Self {
        assert!(
            frames.len() as u64 >= ImageLayout::total_pages(),
            "kernel memory too small: {} < {}",
            frames.len(),
            ImageLayout::total_pages()
        );
        let mut it = frames.iter().copied();
        let mut take = |n: u64| (0..n).map(|_| it.next().unwrap()).collect::<Vec<u64>>();
        ImageFrames {
            text: take(TEXT_PAGES),
            rodata: take(RODATA_PAGES),
            data: take(DATA_PAGES),
            stack: take(STACK_PAGES),
            l1d_buf: take(FLUSH_BUF_PAGES),
            l1i_buf: take(FLUSH_BUF_PAGES),
        }
    }

    /// Physical address of the `i`-th line of a section, given the
    /// platform line size.
    #[must_use]
    pub fn line_pa(section: &[u64], i: u64, line: u64) -> PAddr {
        let lines_per_page = FRAME_SIZE / line;
        let page = (i / lines_per_page) as usize % section.len();
        PAddr(section[page] * FRAME_SIZE + (i % lines_per_page) * line)
    }

    /// All frames of the image (used by destruction to return memory).
    #[must_use]
    pub fn all_frames(&self) -> Vec<u64> {
        let mut v = Vec::new();
        v.extend(&self.text);
        v.extend(&self.rodata);
        v.extend(&self.data);
        v.extend(&self.stack);
        v.extend(&self.l1d_buf);
        v.extend(&self.l1i_buf);
        v
    }

    /// Pages copied by `Kernel_Clone` (text, rodata, data, stack — the
    /// flush buffers need no copying, only allocation).
    #[must_use]
    pub fn copied_pages(&self) -> u64 {
        (self.text.len() + self.rodata.len() + self.data.len() + self.stack.len()) as u64
    }
}

/// One item of the §4.1 shared-data list.
#[derive(Debug, Clone, Copy)]
pub struct SharedItem {
    /// Item name as listed in the paper.
    pub name: &'static str,
    /// Size in bytes (per core where the paper says so).
    pub bytes: u64,
    /// Whether the item is only present on x86.
    pub x86_only: bool,
    /// Whether kernel access to this item is ever indexed by private user
    /// information (the audit property of §4.1: it must not be).
    pub user_indexed: bool,
}

/// The §4.1 audit list: data shared between all kernel images.
pub const SHARED_ITEMS: &[SharedItem] = &[
    SharedItem {
        name: "scheduler ready-queue head array",
        bytes: 4096,
        x86_only: false,
        user_indexed: false,
    },
    SharedItem {
        name: "priority bitmap",
        bytes: 32,
        x86_only: false,
        user_indexed: false,
    },
    SharedItem {
        name: "current scheduling decision",
        bytes: 8,
        x86_only: false,
        user_indexed: false,
    },
    SharedItem {
        name: "IRQ state table",
        bytes: 1126,
        x86_only: false,
        user_indexed: false,
    },
    SharedItem {
        name: "IRQ handler table",
        bytes: 1126,
        x86_only: false,
        user_indexed: false,
    },
    SharedItem {
        name: "interrupt currently being handled",
        bytes: 8,
        x86_only: false,
        user_indexed: false,
    },
    SharedItem {
        name: "first-level hardware ASID table",
        bytes: 1126,
        x86_only: false,
        user_indexed: false,
    },
    SharedItem {
        name: "IO port control table",
        bytes: 2048,
        x86_only: true,
        user_indexed: false,
    },
    SharedItem {
        name: "current thread/cspace/kernel/idle/FPU-owner pointers",
        bytes: 40,
        x86_only: false,
        user_indexed: false,
    },
    SharedItem {
        name: "SMP kernel lock",
        bytes: 8,
        x86_only: false,
        user_indexed: false,
    },
    SharedItem {
        name: "IPI barrier",
        bytes: 8,
        x86_only: false,
        user_indexed: false,
    },
];

/// The residual shared kernel data region, placed in the *boot* image's
/// data segment; all clones keep referencing it.
#[derive(Debug, Clone)]
pub struct SharedKernelData {
    base: PAddr,
    bytes: u64,
    line: u64,
}

impl SharedKernelData {
    /// Lay out the shared items starting at `base` for the given platform.
    #[must_use]
    pub fn new(base: PAddr, cfg: &PlatformConfig) -> Self {
        let x86 = cfg.llc.is_some();
        let bytes: u64 = SHARED_ITEMS
            .iter()
            .filter(|i| x86 || !i.x86_only)
            .map(|i| i.bytes)
            .sum();
        SharedKernelData {
            base,
            bytes,
            line: cfg.line,
        }
    }

    /// Total shared bytes (≈ 9.5 KiB per core on x64, §4.1).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of cache lines spanned.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.bytes.div_ceil(self.line)
    }

    /// Physical address of the `i`-th shared line (for prefetch and for
    /// kernel accesses during scheduling).
    #[must_use]
    pub fn line_pa(&self, i: u64) -> PAddr {
        PAddr(self.base.0 + (i % self.lines()) * self.line)
    }

    /// The §4.1 audit: no shared item may be accessed through an index
    /// derived from private user information. Returns the offending items
    /// (empty in the shipped layout).
    #[must_use]
    pub fn audit() -> Vec<&'static str> {
        SHARED_ITEMS
            .iter()
            .filter(|i| i.user_indexed)
            .map(|i| i.name)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_sim::Platform;

    #[test]
    fn image_layout_is_contiguous_and_disjoint() {
        let img = ImageLayout { base_pfn: 100 };
        assert_eq!(img.text().pfn(), 100);
        assert_eq!(img.rodata().pfn(), 116);
        assert_eq!(img.data().pfn(), 120);
        assert_eq!(img.stack().pfn(), 124);
        assert_eq!(img.l1d_buf().pfn(), 125);
        assert_eq!(img.l1i_buf().pfn(), 133);
        assert_eq!(ImageLayout::total_pages(), 41);
        assert_eq!(img.frames().count() as u64, ImageLayout::total_pages());
    }

    #[test]
    fn shared_data_size_matches_section_4_1() {
        let cfg = Platform::Haswell.config();
        let sd = SharedKernelData::new(PAddr(0x1000), &cfg);
        // §4.1: "total of about 9.5 KiB" on x64.
        let kib = sd.bytes() as f64 / 1024.0;
        assert!((9.0..10.0).contains(&kib), "shared data {kib} KiB");
        // The Arm layout drops the IO-port table.
        let arm = SharedKernelData::new(PAddr(0x1000), &Platform::Sabre.config());
        assert!(arm.bytes() < sd.bytes());
    }

    #[test]
    fn audit_finds_no_user_indexed_items() {
        assert!(SharedKernelData::audit().is_empty());
    }

    #[test]
    fn kva_mapping_is_offset_preserving() {
        let img = ImageLayout { base_pfn: 100 };
        let pa = PAddr(img.text().0 + 0x123);
        assert_eq!(img.kva(pa).0, KERNEL_VBASE + 0x123);
    }

    #[test]
    fn shared_lines_wrap() {
        let cfg = Platform::Haswell.config();
        let sd = SharedKernelData::new(PAddr(0x1000), &cfg);
        let n = sd.lines();
        assert_eq!(sd.line_pa(0), sd.line_pa(n));
    }
}
