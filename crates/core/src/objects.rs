//! Kernel objects, capabilities and object arenas.
//!
//! seL4 controls all access through capabilities (§2.4): a capability names
//! a kernel object and carries access rights. All kernel-object memory is
//! retyped from user-supplied `Untyped` memory, so colouring user memory
//! colours all dynamically allocated kernel data (Figure 2). The paper adds
//! two object types: `Kernel_Image` (a kernel; the clone right gates
//! `Kernel_Clone`) and `Kernel_Memory` (physical memory mappable into a
//! kernel image).

use crate::layout::ImageFrames;
use std::collections::VecDeque;
use tp_sim::{Asid, ColorSet, PhysMap};

/// Index of a capability within a thread's CSpace.
pub type CapIdx = usize;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub usize);
    };
}

id_type!(
    /// A thread control block.
    TcbId
);
id_type!(
    /// An IPC endpoint.
    EpId
);
id_type!(
    /// A notification object.
    NtfnId
);
id_type!(
    /// A kernel image (the paper's `Kernel_Image` object).
    ImageId
);
id_type!(
    /// Kernel memory backing a cloned image (`Kernel_Memory`).
    KmemId
);
id_type!(
    /// An untyped memory object.
    UntypedId
);
id_type!(
    /// A virtual address space (VSpace root).
    VSpaceId
);
id_type!(
    /// A security domain (a colour partition with its own kernel image).
    DomainId
);

/// Capability access rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rights {
    /// Read / receive.
    pub read: bool,
    /// Write / send.
    pub write: bool,
    /// Grant (transfer capabilities over IPC).
    pub grant: bool,
    /// The clone right on a `Kernel_Image` (§4.1): without it, a holder
    /// cannot create further kernels.
    pub clone: bool,
}

impl Rights {
    /// All rights.
    #[must_use]
    pub fn all() -> Self {
        Rights {
            read: true,
            write: true,
            grant: true,
            clone: true,
        }
    }

    /// Read+write without grant or clone.
    #[must_use]
    pub fn rw() -> Self {
        Rights {
            read: true,
            write: true,
            grant: false,
            clone: false,
        }
    }

    /// Derive a weaker capability: rights can only be removed (§4.1: "the
    /// initial process can prevent other threads from cloning kernels by
    /// handing them only derived capabilities with the clone right
    /// stripped").
    #[must_use]
    pub fn mask(self, other: Rights) -> Rights {
        Rights {
            read: self.read && other.read,
            write: self.write && other.write,
            grant: self.grant && other.grant,
            clone: self.clone && other.clone,
        }
    }
}

/// The object a capability refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapObject {
    /// Untyped memory.
    Untyped(UntypedId),
    /// A thread.
    Tcb(TcbId),
    /// An endpoint.
    Endpoint(EpId),
    /// A notification.
    Notification(NtfnId),
    /// A kernel image.
    KernelImage(ImageId),
    /// Kernel memory.
    KernelMemory(KmemId),
    /// An IRQ handler for one interrupt source.
    IrqHandler(u32),
}

/// A capability: an object reference plus rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capability {
    /// Referenced object.
    pub obj: CapObject,
    /// Access rights.
    pub rights: Rights,
}

/// A simple generational arena for kernel objects.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    items: Vec<Option<T>>,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena { items: Vec::new() }
    }
}

impl<T> Arena<T> {
    /// Create an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an object, returning its index.
    pub fn alloc(&mut self, item: T) -> usize {
        if let Some(i) = self.items.iter().position(Option::is_none) {
            self.items[i] = Some(item);
            i
        } else {
            self.items.push(Some(item));
            self.items.len() - 1
        }
    }

    /// Get a reference; `None` if freed or out of range.
    #[must_use]
    pub fn get(&self, idx: usize) -> Option<&T> {
        self.items.get(idx).and_then(Option::as_ref)
    }

    /// Get a mutable reference.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut T> {
        self.items.get_mut(idx).and_then(Option::as_mut)
    }

    /// Remove an object.
    pub fn remove(&mut self, idx: usize) -> Option<T> {
        self.items.get_mut(idx).and_then(Option::take)
    }

    /// Iterate over live objects.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.items
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().map(|t| (i, t)))
    }

    /// Number of live objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.iter().filter(|o| o.is_some()).count()
    }

    /// Whether the arena is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Untyped memory: a pool of frames of (if coloured) a single colour set.
///
/// Colour pools are arithmetic sequences of frame numbers (colours
/// interleave every page), so the pool stores an explicit free list.
#[derive(Debug, Clone)]
pub struct Untyped {
    free: Vec<u64>,
    /// The colours this pool draws from.
    pub colors: ColorSet,
    total: usize,
}

impl Untyped {
    /// Create a pool over the given frames.
    #[must_use]
    pub fn new(mut frames: Vec<u64>, colors: ColorSet) -> Self {
        // Allocate low frames first.
        frames.sort_unstable_by(|a, b| b.cmp(a));
        let total = frames.len();
        Untyped {
            free: frames,
            colors,
            total,
        }
    }

    /// Allocate `n` frames; `None` if exhausted (allocation is
    /// all-or-nothing).
    pub fn alloc(&mut self, n: usize) -> Option<Vec<u64>> {
        if self.free.len() < n {
            return None;
        }
        Some(self.free.split_off(self.free.len() - n))
    }

    /// Return frames to the pool (object destruction reverts to Untyped).
    pub fn free(&mut self, frames: impl IntoIterator<Item = u64>) {
        self.free.extend(frames);
    }

    /// Extract up to `max` frames matching `pred`, preserving the pool's
    /// allocation order for the rest. One in-place pass — domain carving
    /// used to drain and re-sort the whole boot pool per domain, which
    /// dominated the setup cost of short workload runs.
    pub fn take_matching(&mut self, max: usize, mut pred: impl FnMut(u64) -> bool) -> Vec<u64> {
        let mut taken = Vec::new();
        self.free.retain(|&f| {
            if taken.len() < max && pred(f) {
                taken.push(f);
                false
            } else {
                true
            }
        });
        taken
    }

    /// Remaining frames.
    #[must_use]
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Pool size at creation.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// The free list in allocation order (highest frame allocated last).
    /// Read-only view for `Kernel::state_hash`: the exact order matters,
    /// because allocation pops from the tail.
    #[must_use]
    pub fn free_frames(&self) -> &[u64] {
        &self.free
    }
}

/// Scheduling / blocking state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable (ready or running).
    Ready,
    /// Blocked sending on an endpoint.
    BlockedSend(EpId),
    /// Blocked receiving on an endpoint.
    BlockedRecv(EpId),
    /// Blocked on a `Call`, waiting for the reply.
    BlockedReply,
    /// Blocked waiting on a notification.
    BlockedNtfn(NtfnId),
    /// Sleeping until the start of its domain's next time slot.
    SleepingUntilSlice,
    /// Exited.
    Exited,
}

/// A thread control block.
#[derive(Debug, Clone)]
pub struct Tcb {
    /// Scheduling priority (0 = lowest, 255 = highest).
    pub priority: u8,
    /// The core this thread is pinned to.
    pub core: usize,
    /// The thread's address space.
    pub vspace: VSpaceId,
    /// The domain the thread belongs to.
    pub domain: DomainId,
    /// The kernel image handling this thread's system calls (§4.1: "we add
    /// the capability of the kernel responsible for handling its system
    /// calls to each thread's TCB").
    pub image: ImageId,
    /// The frame holding this TCB's kernel object data (coloured memory).
    pub obj_frame: u64,
    /// Current state.
    pub state: ThreadState,
    /// The thread's capability space.
    pub cspace: Vec<Capability>,
    /// Value being transferred by a pending IPC.
    pub ipc_msg: u64,
    /// Caller blocked on this thread's reply (server side of `Call`).
    pub reply_to: Option<TcbId>,
}

/// An IPC endpoint: a rendezvous queue.
#[derive(Debug, Clone, Default)]
pub struct Endpoint {
    /// Threads blocked sending.
    pub send_queue: VecDeque<TcbId>,
    /// Threads blocked receiving.
    pub recv_queue: VecDeque<TcbId>,
    /// Frame holding the endpoint object.
    pub obj_frame: u64,
}

/// A notification object: a data word plus waiters.
#[derive(Debug, Clone, Default)]
pub struct Notification {
    /// Accumulated signal word.
    pub word: u64,
    /// Threads blocked waiting.
    pub waiters: VecDeque<TcbId>,
    /// Frame holding the object.
    pub obj_frame: u64,
}

/// A kernel image: the paper's `Kernel_Image` object (§4.1).
#[derive(Debug, Clone)]
pub struct KernelImage {
    /// Physical frames of text/rodata/data/stack/flush buffers.
    pub layout: ImageFrames,
    /// The kernel address space identifier.
    pub asid: Asid,
    /// Backing memory (`None` for the boot image, whose memory is never
    /// handed to userland so an idle thread always survives, §4.4).
    pub kmem: Option<KmemId>,
    /// IRQs associated with this kernel (`Kernel_SetInt`, §4.2).
    pub irqs: Vec<u32>,
    /// Configured domain-switch padding latency in cycles (Requirement 4;
    /// a user-controlled kernel-image attribute, §4.3).
    pub pad_cycles: u64,
    /// Bitmap of cores this kernel is currently running on (used by the
    /// destruction protocol, §4.4).
    pub running_on: u64,
    /// Invalidated but not yet destroyed (§4.4 "zombie").
    pub zombie: bool,
    /// The image this one was cloned from (revoking an ancestor destroys
    /// the whole clone subtree, §4.1).
    pub parent: Option<ImageId>,
}

/// Kernel memory: frames retyped to back a cloned kernel image.
#[derive(Debug, Clone)]
pub struct KernelMemory {
    /// The frames.
    pub frames: Vec<u64>,
    /// The image mapped onto this memory, once cloned.
    pub image: Option<ImageId>,
}

/// A virtual address space.
#[derive(Debug, Clone)]
pub struct VSpace {
    /// The hardware ASID.
    pub asid: Asid,
    /// The functional page table.
    pub map: PhysMap,
    /// Bump allocator for user mappings.
    pub next_va: u64,
    /// Domain owning the VSpace.
    pub domain: DomainId,
}

/// A security domain: a colour partition, its kernel image and memory pool.
#[derive(Debug, Clone)]
pub struct Domain {
    /// The domain's page colours.
    pub colors: ColorSet,
    /// The kernel image serving this domain.
    pub image: ImageId,
    /// The domain's untyped pool.
    pub pool: UntypedId,
    /// Notification bound to the domain's timer IRQ, if any.
    pub timer_ntfn: Option<NtfnId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_alloc_reuses_slots() {
        let mut a: Arena<u32> = Arena::new();
        let i = a.alloc(10);
        let j = a.alloc(20);
        assert_ne!(i, j);
        a.remove(i);
        let k = a.alloc(30);
        assert_eq!(k, i, "freed slot should be reused");
        assert_eq!(a.len(), 2);
        assert_eq!(*a.get(j).unwrap(), 20);
        assert!(a.get(99).is_none());
    }

    #[test]
    fn rights_can_only_shrink() {
        let all = Rights::all();
        let no_clone = Rights {
            clone: false,
            ..Rights::all()
        };
        let derived = all.mask(no_clone);
        assert!(!derived.clone);
        // Masking with all() again cannot restore the right.
        assert!(!derived.mask(Rights::all()).clone);
    }

    #[test]
    fn untyped_alloc_and_exhaustion() {
        let mut u = Untyped::new((0..10).collect(), ColorSet::all(8));
        let a = u.alloc(4).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(u.available(), 6);
        assert!(u.alloc(7).is_none(), "all-or-nothing");
        assert_eq!(u.available(), 6);
        u.free(a);
        assert_eq!(u.available(), 10);
    }

    #[test]
    fn untyped_allocates_low_frames_first() {
        let mut u = Untyped::new(vec![8, 0, 4], ColorSet::all(4));
        assert_eq!(u.alloc(1).unwrap(), vec![0]);
    }
}
