//! High-level system construction: the role of the initial user process.
//!
//! §3.3: "the initial process separates all free memory into coloured
//! pools, one per domain, clones a kernel for each partition into memory
//! from the domain's pool, starts a child process in each pool, and
//! associates the child with the corresponding kernel image." The
//! [`SystemBuilder`] plays that initial process.

use crate::commit::Commit;
use crate::config::ProtectionConfig;
use crate::engine::{
    run_programs_with, EnvOutcome, EvKind, ExecMode, SimCtl, SimError, SimErrorKind, SimInner,
    UserProgram, DEFAULT_WINDOW,
};
use crate::kernel::{EngineMode, Kernel, KernelStats};
use crate::objects::{DomainId, TcbId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex as StdMutex;

use tp_sim::{ColorSet, Machine, PlatformConfig};

/// Default simulated RAM in frames (128 MiB — ample for every experiment).
pub const DEFAULT_RAM_FRAMES: u64 = 32_768;

/// Default per-domain memory pool in frames.
pub const DEFAULT_DOMAIN_FRAMES: usize = 8_000;

/// Maximum cached boot-prefix snapshots (LRU eviction). Sized so a full
/// campaign's working set — platforms × protection configs × vote seeds
/// for the intra-core channel family — stays resident between cells.
const BOOT_CACHE_CAP: usize = 64;

/// A boot-prefix checkpoint: the machine/kernel state right after thread
/// creation, before the setup hook runs. Restoring is a pure clone, so a
/// warm start is bit-identical to a cold boot with the same parameters.
struct BootSnapshot {
    machine: Machine,
    kernel: Kernel,
    domain_ids: Vec<DomainId>,
    tcbs: Vec<TcbId>,
    /// `kernel.state_hash()` at checkpoint time. Every restore re-hashes
    /// the clone against this; a mismatch (rot, or an injected
    /// [`crate::fault::FaultKind::SnapshotCorrupt`]) evicts the entry and
    /// falls back to a cold boot instead of trusting the snapshot.
    hash: u64,
}

/// Shared boot-prefix cache, keyed by a digest of everything that shapes
/// the boot (platform, protection, seed, slice, RAM, domain and thread
/// specs). Campaign cells on the same platform×scenario share entries.
static BOOT_CACHE: StdMutex<Vec<(u64, BootSnapshot)>> = StdMutex::new(Vec::new());

static BOOT_COLD: AtomicU64 = AtomicU64::new(0);
static BOOT_WARM: AtomicU64 = AtomicU64::new(0);
static BOOT_COLD_NANOS: AtomicU64 = AtomicU64::new(0);
static BOOT_WARM_NANOS: AtomicU64 = AtomicU64::new(0);
static BOOT_FALLBACK: AtomicU64 = AtomicU64::new(0);

/// Process-wide boot accounting: how many boots were served cold (built
/// from scratch) vs. warm (restored from a cached boot snapshot), and the
/// wall-clock nanoseconds each path spent. CI budgets assert that warm
/// starts actually cut per-cell boot time.
#[derive(Debug, Clone, Copy, Default)]
pub struct BootStats {
    /// Boots built from scratch.
    pub cold_boots: u64,
    /// Boots restored from a cached snapshot.
    pub warm_boots: u64,
    /// Total wall-clock nanoseconds spent cold-booting.
    pub cold_nanos: u64,
    /// Total wall-clock nanoseconds spent warm-restoring.
    pub warm_nanos: u64,
    /// Warm restores whose snapshot failed `state_hash()` verification and
    /// fell back to a cold boot (the cold boot is also counted in
    /// `cold_boots`).
    pub fallback_boots: u64,
}

/// Read the process-wide [`BootStats`] counters.
#[must_use]
pub fn boot_stats() -> BootStats {
    BootStats {
        cold_boots: BOOT_COLD.load(Ordering::Relaxed),
        warm_boots: BOOT_WARM.load(Ordering::Relaxed),
        cold_nanos: BOOT_COLD_NANOS.load(Ordering::Relaxed),
        warm_nanos: BOOT_WARM_NANOS.load(Ordering::Relaxed),
        fallback_boots: BOOT_FALLBACK.load(Ordering::Relaxed),
    }
}

struct DomainSpec {
    colors: Option<ColorSet>,
    max_frames: usize,
}

struct ThreadSpec {
    domain: usize,
    core: usize,
    prio: u8,
    prog: Box<dyn UserProgram>,
    primary: bool,
}

/// Handle to a domain being described.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainHandle(usize);

/// Post-setup hook: runs after all threads exist, before the simulation
/// starts (grant capabilities, create endpoints, configure padding, ...).
pub type SetupFn = Box<dyn FnOnce(&mut Kernel, &mut Machine, &[TcbId], &[DomainId]) + Send>;

/// The complete fixed shape of a simulated system, as one `Copy` value:
/// everything [`SystemBuilder`]'s chained knobs used to set, minus the
/// per-run payload (domains, programs, setup hook).
///
/// Build one with [`SystemSpec::new`] and adjust fields directly (it is a
/// plain data struct), then hand it to [`SystemBuilder::from_spec`].
/// Experiments that sweep a parameter copy the spec and overwrite one
/// field — no builder re-chaining.
#[derive(Debug, Clone, Copy)]
pub struct SystemSpec {
    /// Hardware platform description (a [`tp_sim::Platform`] key converts
    /// into one).
    pub platform: PlatformConfig,
    /// The time-protection mechanism suite.
    pub prot: ProtectionConfig,
    /// RNG seed (experiments vary it across runs).
    pub seed: u64,
    /// Preemption time slice in microseconds (paper experiments use 1 ms
    /// or 10 ms).
    pub slice_us: f64,
    /// Simulated RAM size in frames.
    pub ram_frames: u64,
    /// Cross-core interleaving window in cycles (smaller = finer-grained
    /// cross-core timing at more host-side synchronisation cost).
    pub window: u64,
    /// Cycle budget; the simulation stops when it is exceeded.
    pub max_cycles: u64,
    /// Thread scheduling regime: strict domain slots or open (IPC-switched)
    /// scheduling.
    pub scheduling: EngineMode,
    /// Which executor runs the environments (see [`ExecMode`]).
    pub executor: ExecMode,
}

impl SystemSpec {
    /// A spec with the workspace defaults: seed `0xC0FFEE`, 1 ms slice,
    /// [`DEFAULT_RAM_FRAMES`], [`DEFAULT_WINDOW`], no cycle cap, slotted
    /// scheduling, default executor.
    #[must_use]
    pub fn new(platform: impl Into<PlatformConfig>, prot: ProtectionConfig) -> Self {
        SystemSpec {
            platform: platform.into(),
            prot,
            seed: 0xC0FFEE,
            slice_us: 1_000.0,
            ram_frames: DEFAULT_RAM_FRAMES,
            window: DEFAULT_WINDOW,
            max_cycles: u64::MAX,
            scheduling: EngineMode::Slotted,
            executor: ExecMode::default(),
        }
    }
}

/// Builder for a complete simulated system.
pub struct SystemBuilder {
    spec: SystemSpec,
    domains: Vec<DomainSpec>,
    threads: Vec<ThreadSpec>,
    setup: Option<SetupFn>,
    warm_boot: bool,
    record_commits: bool,
}

impl SystemBuilder {
    /// Start describing a system with a protection config. Accepts either
    /// a [`tp_sim::Platform`] registry key or a full [`PlatformConfig`] (so
    /// experiments can run on custom hardware descriptions).
    ///
    /// Equivalent to `SystemBuilder::from_spec(SystemSpec::new(platform,
    /// prot))`; the chained knobs below are thin delegating wrappers over
    /// the spec's fields.
    #[must_use]
    pub fn new(platform: impl Into<PlatformConfig>, prot: ProtectionConfig) -> Self {
        Self::from_spec(SystemSpec::new(platform, prot))
    }

    /// Start describing a system from a complete [`SystemSpec`].
    #[must_use]
    pub fn from_spec(spec: SystemSpec) -> Self {
        SystemBuilder {
            spec,
            domains: Vec::new(),
            threads: Vec::new(),
            setup: None,
            warm_boot: false,
            record_commits: false,
        }
    }

    /// The spec this builder was configured with (knob calls included).
    #[must_use]
    pub fn spec(&self) -> SystemSpec {
        self.spec
    }

    /// Reuse (and populate) the shared boot-prefix snapshot cache: runs
    /// with identical boot parameters restore a cloned checkpoint instead
    /// of re-booting. Restoration is bit-identical, so results are
    /// unaffected; only wall-clock boot time changes.
    #[must_use]
    pub fn warm_boot(mut self, on: bool) -> Self {
        self.warm_boot = on;
        self
    }

    /// Record a [`Commit`] log for the run (enabled after boot, so the
    /// log covers exactly the post-boot history). The log is returned in
    /// [`SystemReport::commits`].
    #[must_use]
    pub fn record_commits(mut self, on: bool) -> Self {
        self.record_commits = on;
        self
    }

    /// Digest of every input that shapes the boot prefix. Scheduling mode,
    /// executor and cycle caps are applied after the snapshot point and are
    /// deliberately excluded.
    fn boot_key(&self, slice_cycles: u64) -> u64 {
        let mut h = crate::commit::StateHasher::new();
        h.str(&format!("{:?}", self.spec.platform));
        h.str(&format!("{:?}", self.spec.prot));
        h.u64(self.spec.seed)
            .u64(slice_cycles)
            .u64(self.spec.ram_frames);
        h.usize(self.domains.len());
        for d in &self.domains {
            h.opt(d.colors.map(|c| c.0)).usize(d.max_frames);
        }
        h.usize(self.threads.len());
        for t in &self.threads {
            h.usize(t.domain).usize(t.core).byte(t.prio);
        }
        h.finish()
    }

    /// Set the RNG seed (delegates to [`SystemSpec::seed`]).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Set the preemption time slice in microseconds (delegates to
    /// [`SystemSpec::slice_us`]).
    #[must_use]
    pub fn slice_us(mut self, us: f64) -> Self {
        self.spec.slice_us = us;
        self
    }

    /// Cap the simulation length in cycles (delegates to
    /// [`SystemSpec::max_cycles`]).
    #[must_use]
    pub fn max_cycles(mut self, c: u64) -> Self {
        self.spec.max_cycles = c;
        self
    }

    /// Select open (thread-level, IPC-switched) scheduling instead of the
    /// default strict domain slots (delegates to [`SystemSpec::scheduling`]).
    #[must_use]
    pub fn open_scheduling(mut self) -> Self {
        self.spec.scheduling = EngineMode::Open;
        self
    }

    /// Simulated RAM size in frames (delegates to
    /// [`SystemSpec::ram_frames`]).
    #[must_use]
    pub fn ram_frames(mut self, frames: u64) -> Self {
        self.spec.ram_frames = frames;
        self
    }

    /// Cross-core interleaving window in cycles (delegates to
    /// [`SystemSpec::window`]).
    #[must_use]
    pub fn window(mut self, cycles: u64) -> Self {
        self.spec.window = cycles;
        self
    }

    /// Select the executor for this run (delegates to
    /// [`SystemSpec::executor`]). Tests use this to pin a worker count
    /// programmatically instead of mutating `TP_THREADS`.
    #[must_use]
    pub fn executor(mut self, mode: ExecMode) -> Self {
        self.spec.executor = mode;
        self
    }

    /// Declare a domain. With colouring enabled and `colors == None`, the
    /// available colours are split evenly across declared domains.
    pub fn domain(&mut self, colors: Option<ColorSet>) -> DomainHandle {
        self.domain_sized(colors, DEFAULT_DOMAIN_FRAMES)
    }

    /// Declare a domain with an explicit memory-pool size in frames.
    pub fn domain_sized(&mut self, colors: Option<ColorSet>, max_frames: usize) -> DomainHandle {
        self.domains.push(DomainSpec { colors, max_frames });
        DomainHandle(self.domains.len() - 1)
    }

    /// Spawn a primary program in a domain; the simulation ends when all
    /// primary programs finish.
    pub fn spawn(&mut self, domain: DomainHandle, core: usize, prio: u8, prog: impl UserProgram) {
        self.threads.push(ThreadSpec {
            domain: domain.0,
            core,
            prio,
            prog: Box::new(prog),
            primary: true,
        });
    }

    /// Spawn a daemon program (victims, idlers): it does not keep the
    /// simulation alive.
    pub fn spawn_daemon(
        &mut self,
        domain: DomainHandle,
        core: usize,
        prio: u8,
        prog: impl UserProgram,
    ) {
        self.threads.push(ThreadSpec {
            domain: domain.0,
            core,
            prio,
            prog: Box::new(prog),
            primary: false,
        });
    }

    /// Install the post-setup hook.
    pub fn setup(&mut self, f: SetupFn) {
        self.setup = Some(f);
    }

    /// Build and run the system to completion.
    ///
    /// # Panics
    /// Panics if a worker program panicked (other than normal shutdown) or
    /// if construction fails (e.g. pool exhaustion). The campaign
    /// supervisor uses [`SystemBuilder::try_run`] instead.
    #[must_use]
    pub fn run(self) -> SystemReport {
        match self.try_run() {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Build and run the system to completion, returning a typed error
    /// instead of panicking when a simulated program fails or the engine
    /// watchdog aborts the run.
    ///
    /// Any [`crate::fault`] plan and deadline armed on the calling thread
    /// is applied to this run.
    ///
    /// # Errors
    /// [`SimError`] with the first worker failure or watchdog abort.
    ///
    /// # Panics
    /// Still panics if construction itself fails (e.g. pool exhaustion) —
    /// that is a bug in the experiment, not a simulation outcome.
    pub fn try_run(self) -> Result<SystemReport, SimError> {
        let cfg = self.spec.platform;
        let slice_cycles = cfg.us_to_cycles(self.spec.slice_us);
        let boot_start = std::time::Instant::now();
        let key = self.boot_key(slice_cycles);
        let armed_fault = crate::fault::armed();

        let restored = if self.warm_boot {
            let mut cache = BOOT_CACHE.lock().expect("boot cache");
            cache.iter().position(|(k, _)| *k == key).and_then(|i| {
                // LRU: a hit moves the entry to the back so campaign-wide
                // reuse distances don't evict live boot shapes.
                let entry = cache.remove(i);
                let snap = &entry.1;
                let machine = snap.machine.clone();
                let mut kernel = snap.kernel.clone();
                let state_rest = (snap.domain_ids.clone(), snap.tcbs.clone());
                if matches!(armed_fault, Some(crate::fault::FaultKind::SnapshotCorrupt)) {
                    // Deterministic rot: perturb the clone so verification
                    // must catch it.
                    kernel.stats.syscalls = kernel.stats.syscalls.wrapping_add(0xBAD);
                }
                // Trust nothing restored: re-hash the clone against the
                // checkpointed hash before handing it to the run.
                if kernel.state_hash() == snap.hash {
                    cache.push(entry);
                    Some((machine, kernel, state_rest.0, state_rest.1))
                } else {
                    // Evict (drop `entry`) and fall back to a cold boot.
                    BOOT_FALLBACK.fetch_add(1, Ordering::Relaxed);
                    None
                }
            })
        } else {
            None
        };
        let warm = restored.is_some();

        let (mut machine, mut kernel, domain_ids, tcbs) = match restored {
            Some(state) => state,
            None => {
                let mut machine = Machine::new(cfg, self.spec.seed);
                let mut kernel =
                    Kernel::new(cfg, self.spec.prot, self.spec.ram_frames, slice_cycles);

                if self.spec.prot.disable_data_prefetcher {
                    for c in &mut machine.cores {
                        c.dpf.set_enabled(false);
                    }
                }

                // Colour assignment.
                let n_colors = cfg.partition_colors();
                let n_domains = self.domains.len().max(1) as u64;
                let per = (n_colors / n_domains).max(1);
                let mut domain_ids = Vec::new();
                for (i, spec) in self.domains.iter().enumerate() {
                    let colors = spec.colors.unwrap_or_else(|| {
                        if self.spec.prot.color_userland {
                            let lo = i as u64 * per;
                            ColorSet::range(lo, (lo + per).min(n_colors))
                        } else {
                            ColorSet::all(n_colors)
                        }
                    });
                    let d = kernel
                        .create_domain(colors, spec.max_frames)
                        .expect("domain memory");
                    if self.spec.prot.clone_kernel {
                        kernel
                            .clone_kernel_for_domain(&mut machine, 0, d)
                            .expect("kernel clone");
                    }
                    domain_ids.push(d);
                }

                if let Some(pad_us) = self.spec.prot.pad_us {
                    let pad = cfg.us_to_cycles(pad_us);
                    let ids: Vec<usize> = kernel.images.iter().map(|(i, _)| i).collect();
                    for i in ids {
                        kernel.set_pad_cycles(crate::objects::ImageId(i), pad);
                    }
                }

                // Threads.
                let mut tcbs = Vec::new();
                for spec in &self.threads {
                    let d = domain_ids[spec.domain];
                    let t = kernel
                        .create_thread(d, spec.core, spec.prio)
                        .expect("thread");
                    tcbs.push(t);
                }

                if self.warm_boot {
                    let mut cache = BOOT_CACHE.lock().expect("boot cache");
                    if !cache.iter().any(|(k, _)| *k == key) {
                        if cache.len() >= BOOT_CACHE_CAP {
                            cache.remove(0);
                        }
                        cache.push((
                            key,
                            BootSnapshot {
                                machine: machine.clone(),
                                kernel: kernel.clone(),
                                domain_ids: domain_ids.clone(),
                                tcbs: tcbs.clone(),
                                hash: kernel.state_hash(),
                            },
                        ));
                    }
                }
                (machine, kernel, domain_ids, tcbs)
            }
        };

        let boot_nanos = u64::try_from(boot_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if warm {
            BOOT_WARM.fetch_add(1, Ordering::Relaxed);
            BOOT_WARM_NANOS.fetch_add(boot_nanos, Ordering::Relaxed);
        } else {
            BOOT_COLD.fetch_add(1, Ordering::Relaxed);
            BOOT_COLD_NANOS.fetch_add(boot_nanos, Ordering::Relaxed);
        }

        // Recording starts after the (possibly shared) boot prefix, so the
        // cache stays logging-agnostic and the log covers the run proper.
        if self.record_commits {
            kernel.log.enable();
        }

        // Injected faults that live in machine/kernel state (the env faults
        // and the watchdog deadline are armed on the engine below).
        match armed_fault {
            Some(crate::fault::FaultKind::CommitFlip { index }) => kernel.log.arm_flip(index),
            Some(crate::fault::FaultKind::NoisePoison { after }) => {
                machine.rng().poison_after(after);
            }
            _ => {}
        }

        let specs: Vec<_> = tcbs
            .iter()
            .zip(self.threads)
            .map(|(&t, spec)| {
                (
                    t,
                    spec.core,
                    domain_ids[spec.domain],
                    spec.prog,
                    spec.primary,
                )
            })
            .collect();

        if let Some(setup) = self.setup {
            setup(&mut kernel, &mut machine, &tcbs, &domain_ids);
        }

        // Engine mode + initial schedule per core.
        for core in 0..cfg.cores {
            kernel.cores[core].mode = self.spec.scheduling;
            if kernel.cores[core].slots.is_empty() {
                continue;
            }
            kernel.cores[core].slot_idx = 0;
            let first = kernel.schedule_same_slot(&mut machine, core);
            if let Some(t) = first {
                let (img, dom) = {
                    let tcb = kernel.tcbs.get(t.0).expect("live thread");
                    (tcb.image, tcb.domain)
                };
                kernel.cores[core].cur_domain = Some(dom);
                if img != kernel.cores[core].cur_image {
                    let from = kernel.cores[core].cur_image;
                    kernel.switch_image_fast(&mut machine, core, from, img);
                }
            }
        }

        let mut inner = SimInner::new(machine, kernel, self.spec.window, self.spec.max_cycles);
        if let Some(kind) = armed_fault {
            inner.arm_env_fault(kind);
        }
        // The watchdog deadline: whatever the supervisor armed, or — when a
        // fault is injected without one — a generous default so a chaos run
        // outside the supervisor can still never hang forever.
        inner.deadline = crate::fault::deadline().or_else(|| {
            armed_fault.map(|_| std::time::Instant::now() + std::time::Duration::from_secs(60))
        });
        if self.spec.scheduling == EngineMode::Slotted {
            for core in 0..cfg.cores {
                if !inner.kernel.cores[core].slots.is_empty() {
                    inner.push_event(core, slice_cycles, EvKind::Tick);
                }
            }
        }
        let ctl = SimCtl::new(inner);

        let programs = specs
            .into_iter()
            .map(|(t, core, d, prog, primary)| {
                let colors = ctl
                    .inner
                    .lock()
                    .kernel
                    .domains
                    .get(d.0)
                    .expect("domain")
                    .colors;
                (t, core, d, colors, prog, primary)
            })
            .collect();

        let ctl = run_programs_with(ctl, programs, self.spec.executor);
        let mut g = ctl.inner.lock();
        // The typed deadlock slot outranks the error string: it carries the
        // waiting-env set and the exact interaction ordinal the detector
        // proved the wedge at.
        if let Some((waiting_envs, at_interaction)) = g.deadlock.take() {
            let message = g.error.take().unwrap_or_else(|| {
                format!(
                    "deadlock: {} environment(s) suspended with no runnable progress \
                     at interaction {at_interaction}",
                    waiting_envs.len()
                )
            });
            return Err(SimError {
                kind: SimErrorKind::Deadlock {
                    waiting_envs,
                    at_interaction,
                },
                message,
            });
        }
        if let Some(e) = g.error.take() {
            return Err(SimError::from_message(e));
        }
        // Per-env outcomes in spawn order: isolated daemon failures are a
        // report property, not a cell error.
        let failures = std::mem::take(&mut g.env_failures);
        let env_outcomes = tcbs
            .iter()
            .map(
                |t| match failures.iter().find(|(env, _)| *env == t.0 as u64) {
                    Some((env, message)) => EnvOutcome::Failed {
                        env: *env,
                        message: message.clone(),
                    },
                    None => EnvOutcome::Completed,
                },
            )
            .collect();
        Ok(SystemReport {
            cfg: g.machine.cfg,
            stats: g.kernel.stats,
            cycles: (0..g.machine.cfg.cores)
                .map(|c| g.machine.cycles(c))
                .collect(),
            domains: domain_ids,
            state_hash: g.kernel.state_hash(),
            env_outcomes,
            commits: g.kernel.log.take(),
        })
    }
}

/// Final state of a simulation run.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Platform configuration.
    pub cfg: PlatformConfig,
    /// Kernel statistics.
    pub stats: KernelStats,
    /// Final cycle counters per core.
    pub cycles: Vec<u64>,
    /// The domains, in declaration order.
    pub domains: Vec<DomainId>,
    /// [`Kernel::state_hash`] of the final kernel state — the bit-for-bit
    /// fingerprint the executor-equivalence property tests compare across
    /// [`ExecMode`]s.
    pub state_hash: u64,
    /// Per-environment outcome in spawn order: which environments completed
    /// and which failed in isolation (non-primary panics that did not end
    /// the cell). Multi-tenant scenarios report fleet statistics over the
    /// survivors.
    pub env_outcomes: Vec<EnvOutcome>,
    /// The commit log, when recording was requested with
    /// [`SystemBuilder::record_commits`] (empty otherwise). Engine runs
    /// issue unlogged user-program machine traffic, so this is an audit
    /// trail of kernel mutations, not a replayable image (see
    /// [`mod@crate::replay`]).
    pub commits: Vec<Commit>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use tp_sim::Platform;

    #[test]
    fn single_thread_runs_to_completion() {
        let done = Arc::new(Mutex::new(0u64));
        let done2 = Arc::clone(&done);
        let mut b = SystemBuilder::new(Platform::Haswell, ProtectionConfig::raw());
        let d = b.domain(None);
        b.spawn(d, 0, 100, move |env: &mut crate::engine::UserEnv| {
            let (va, _) = env.map_pages(2);
            let mut sum = 0;
            for i in 0..64u64 {
                sum += env.load(tp_sim::VAddr(va.0 + i * 64));
            }
            *done2.lock() = sum.max(1);
        });
        let report = b.run();
        assert!(*done.lock() > 0, "program must have run");
        assert!(report.cycles[0] > 0);
    }

    #[test]
    fn two_domains_alternate_with_protection() {
        let log: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let mut b = SystemBuilder::new(Platform::Haswell, ProtectionConfig::protected())
            .slice_us(100.0)
            .max_cycles(40_000_000);
        let d0 = b.domain(None);
        let d1 = b.domain(None);
        b.spawn(d0, 0, 100, move |env: &mut crate::engine::UserEnv| {
            for _ in 0..5 {
                let (gap, resume) = env.wait_preempt();
                log2.lock().push((gap, resume));
            }
        });
        b.spawn_daemon(d1, 0, 100, move |env: &mut crate::engine::UserEnv| loop {
            env.compute(1000);
        });
        let report = b.run();
        let log = log.lock();
        assert_eq!(log.len(), 5);
        for (gap, resume) in log.iter() {
            // Offline time ≈ one slice of the other domain plus switch work.
            let offline = resume - gap;
            let slice = report.cfg.us_to_cycles(100.0);
            assert!(offline > slice / 2, "offline {offline} vs slice {slice}");
            assert!(offline < 4 * slice, "offline {offline} vs slice {slice}");
        }
        assert!(report.stats.domain_switches >= 10);
    }

    #[test]
    fn daemon_does_not_block_completion() {
        let mut b = SystemBuilder::new(Platform::Sabre, ProtectionConfig::raw())
            .slice_us(50.0)
            .max_cycles(20_000_000);
        let d = b.domain(None);
        b.spawn(d, 0, 100, |env: &mut crate::engine::UserEnv| {
            env.compute(10_000);
        });
        b.spawn_daemon(d, 0, 100, |env: &mut crate::engine::UserEnv| loop {
            env.compute(500);
        });
        let _ = b.run();
    }

    #[test]
    fn ipc_ping_pong_across_domains_open_mode() {
        use crate::kernel::Syscall;
        use crate::objects::{CapObject, Capability, Rights};
        let count = Arc::new(Mutex::new(0u32));
        let count2 = Arc::clone(&count);
        let mut b = SystemBuilder::new(Platform::Haswell, ProtectionConfig::protected())
            .max_cycles(200_000_000);
        let d0 = b.domain(None);
        let d1 = b.domain(None);
        b.setup(Box::new(|k, _m, tcbs, domains| {
            let ep = k.create_endpoint(domains[0]).unwrap();
            let cap = Capability {
                obj: CapObject::Endpoint(ep),
                rights: Rights::all(),
            };
            let c0 = k.grant_cap(tcbs[0], cap);
            let c1 = k.grant_cap(tcbs[1], cap);
            assert_eq!(c0, 0);
            assert_eq!(c1, 0);
        }));
        let mut b = b.open_scheduling();
        b.spawn(d0, 0, 100, move |env: &mut crate::engine::UserEnv| {
            for i in 0..10u64 {
                let r = env.syscall(Syscall::Call { cap: 0, msg: i }).unwrap();
                assert_eq!(r, i + 1);
            }
            *count2.lock() = 10;
        });
        b.spawn_daemon(d1, 0, 100, |env: &mut crate::engine::UserEnv| {
            let first = env.syscall(Syscall::Recv { cap: 0 }).unwrap();
            let mut msg = first;
            loop {
                msg = env
                    .syscall(Syscall::ReplyRecv {
                        cap: 0,
                        msg: msg + 1,
                    })
                    .unwrap();
            }
        });
        let report = b.run();
        assert_eq!(*count.lock(), 10);
        // First Call goes through the slow path (server not yet waiting);
        // all later Calls and every ReplyRecv hit the fastpath.
        assert!(
            report.stats.ipc_fastpath >= 15,
            "fastpath {}",
            report.stats.ipc_fastpath
        );
    }
}
