//! Stackful coroutines for the cooperative simulation executor.
//!
//! The engine in `tp-core` multiplexes N simulated environments over M host
//! worker threads. Each environment runs as a [`Coro`]: a resumable task with
//! its own call stack that [`suspend`]s back to the worker that resumed it
//! whenever the environment would otherwise block an OS thread (waiting for
//! its scheduling turn, waiting for preemption).
//!
//! Two interchangeable backends implement the same resume/suspend contract:
//!
//! * **Stack** (x86_64 only, the default): a hand-rolled context switch that
//!   saves the System-V callee-saved registers (`rbp`, `rbx`, `r12`–`r15`),
//!   the `MXCSR` control word and the x87 control word, and swaps `rsp` onto
//!   a heap-allocated stack. A resume/suspend pair is two register swaps —
//!   no syscalls, no scheduler round trips.
//! * **Thread** (all architectures; forced with `TP_CORO=thread`): one
//!   parked OS thread per coroutine with a pair of rendezvous channels. It
//!   exists as a portability fallback and as a differential oracle for the
//!   stack backend in tests.
//!
//! # Safety contract
//!
//! This is the only crate in the workspace that uses `unsafe`. The stack
//! backend is sound under two conditions the executor upholds:
//!
//! 1. **No `!Send` state across suspends.** A coroutine may be resumed by a
//!    *different* host thread than the one it last suspended on. The closure
//!    must therefore not hold thread-affine values (e.g. a
//!    `std::sync::MutexGuard`, thread-local borrows) across a [`suspend`]
//!    call. The engine releases the simulation lock before every suspend and
//!    re-acquires it after resume.
//! 2. **Coroutines are driven to completion.** Dropping an incomplete stack
//!    coroutine frees its stack without unwinding it, leaking any
//!    interior objects. The executor drains every task (a stopping
//!    simulation unwinds its environments with its exit payload) before
//!    dropping, so nothing leaks in practice.
//!
//! Panics never cross the assembly: the coroutine entry point catches the
//! unwind and hands the payload back to the host through [`Coro::take_panic`],
//! mirroring what `std::thread::JoinHandle::join` would have returned under
//! the old thread-per-environment engine.

#![warn(missing_docs)]

use std::any::Any;
use std::cell::Cell;
use std::sync::OnceLock;

/// Default coroutine stack size when `TP_STACK_KB` is unset: 256 KiB.
///
/// Generous for the simulator's environments (shallow call graphs, no
/// recursion); heap pages are committed lazily by the OS, so thousands of
/// idle coroutines cost address space, not RSS.
const DEFAULT_STACK_KIB: usize = 256;

/// Floor on the coroutine stack size; below this the entry trampoline and
/// panic machinery themselves would not fit safely.
const MIN_STACK_BYTES: usize = 32 * 1024;

/// The coroutine stack size in bytes: `TP_STACK_KB` (KiB, min 32) or the
/// 256 KiB default. Read once per process.
pub fn default_stack_bytes() -> usize {
    static BYTES: OnceLock<usize> = OnceLock::new();
    *BYTES.get_or_init(|| {
        std::env::var("TP_STACK_KB")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .map(|kib| (kib * 1024).max(MIN_STACK_BYTES))
            .unwrap_or(DEFAULT_STACK_KIB * 1024)
    })
}

/// Guard value written at the base (lowest address) of every stack-backend
/// coroutine stack, and mirrored as a per-task slot by the thread backend so
/// both backends share one overflow-detection contract. An overflowing
/// coroutine overwrites the base of its stack last, so a dead canary at a
/// suspend point means the stack was exhausted (or deliberately clobbered by
/// the `stack-overflow` fault class).
const CANARY: u64 = 0x7A5E_CA11_DEAD_F00D;

/// The canonical stack-overflow panic: every canary-check failure raises
/// this message, so the engine and supervisor classify overflows uniformly
/// across backends.
fn overflow_panic(stack_bytes: Option<usize>) -> ! {
    match stack_bytes {
        Some(b) => panic!(
            "stack overflow: coroutine guard canary clobbered (stack {} KiB; raise TP_STACK_KB)",
            b / 1024
        ),
        None => panic!("stack overflow: coroutine guard canary clobbered (raise TP_STACK_KB)"),
    }
}

/// Whether the running coroutine's stack guard canary is intact. Always
/// `true` from plain host code (there is no coroutine stack to guard).
pub fn canary_intact() -> bool {
    match current_get() {
        Current::Host => true,
        #[cfg(target_arch = "x86_64")]
        Current::Stack(inner) => unsafe { stack::canary_ok(inner) },
        Current::Thread(task) => unsafe { thread_impl::canary_ok(task) },
    }
}

/// Deliberately kill the running coroutine's stack guard canary — the
/// deterministic injection point for the `stack-overflow` fault class. The
/// next canary check (every [`suspend`], or an explicit [`canary_intact`])
/// reports the overflow. No-op from plain host code.
pub fn clobber_canary() {
    match current_get() {
        Current::Host => {}
        #[cfg(target_arch = "x86_64")]
        Current::Stack(inner) => unsafe { stack::clobber_canary(inner) },
        Current::Thread(task) => unsafe { thread_impl::clobber_canary(task) },
    }
}

/// Which coroutine implementation backs a [`Coro`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// In-place context switch on a heap-allocated stack (x86_64 only).
    Stack,
    /// One parked OS thread per coroutine (portable fallback and oracle).
    Thread,
}

/// The process-wide default backend: `Stack` on x86_64 unless
/// `TP_CORO=thread` is set; `Thread` everywhere else. Read once.
pub fn default_backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        let forced_thread = std::env::var("TP_CORO")
            .map(|v| v == "thread")
            .unwrap_or(false);
        if cfg!(target_arch = "x86_64") && !forced_thread {
            Backend::Stack
        } else {
            Backend::Thread
        }
    })
}

/// What the current thread is running, from the coroutine machinery's point
/// of view. Set for the duration of a resume (stack backend) or for the
/// lifetime of the task body (thread backend).
#[derive(Clone, Copy)]
enum Current {
    /// Plain host code: [`suspend`] is a bug here.
    Host,
    /// Inside a stack-backend coroutine.
    #[cfg(target_arch = "x86_64")]
    Stack(*mut stack::Inner),
    /// Inside a thread-backend coroutine.
    Thread(*const thread_impl::TaskSide),
}

thread_local! {
    static CURRENT: Cell<Current> = const { Cell::new(Current::Host) };
}

fn current_replace(c: Current) -> Current {
    CURRENT.with(|t| t.replace(c))
}

fn current_set(c: Current) {
    CURRENT.with(|t| t.set(c));
}

fn current_get() -> Current {
    CURRENT.with(Cell::get)
}

/// `true` when called from inside a coroutine body (either backend), i.e.
/// when [`suspend`] is legal.
pub fn on_coroutine() -> bool {
    !matches!(current_get(), Current::Host)
}

/// Yield the running coroutine back to the host thread that resumed it.
///
/// Returns when some host thread — not necessarily the same one — calls
/// [`Coro::resume`] again. Callers must not hold thread-affine (`!Send`)
/// values across this call; see the crate-level safety contract.
///
/// # Panics
///
/// Panics if called from plain host code (outside any coroutine).
pub fn suspend() {
    match current_get() {
        Current::Host => panic!("tp_exec::suspend() called outside a coroutine"),
        #[cfg(target_arch = "x86_64")]
        Current::Stack(inner) => unsafe { stack::suspend(inner) },
        Current::Thread(task) => unsafe { thread_impl::suspend(task) },
    }
}

enum Imp {
    #[cfg(target_arch = "x86_64")]
    Stack(stack::StackCoro),
    Thread(thread_impl::ThreadCoro),
}

/// A resumable task with its own stack.
///
/// Created suspended; the closure does not run until the first
/// [`resume`](Coro::resume). Each resume runs the task until it either
/// [`suspend`]s (resume returns `false`) or finishes — by returning or by
/// panicking — after which resume returns `true` and the panic payload, if
/// any, is available from [`take_panic`](Coro::take_panic).
pub struct Coro(Imp);

impl Coro {
    /// Create a coroutine on the default backend with the default stack size.
    pub fn new(f: impl FnOnce() + Send + 'static) -> Coro {
        Self::with_stack(default_stack_bytes(), f)
    }

    /// Create a coroutine on the default backend with an explicit stack size
    /// in bytes (clamped up to a safe minimum; ignored by the thread
    /// backend, whose stacks are ordinary OS thread stacks).
    pub fn with_stack(stack_bytes: usize, f: impl FnOnce() + Send + 'static) -> Coro {
        #[cfg(target_arch = "x86_64")]
        if default_backend() == Backend::Stack {
            return Coro(Imp::Stack(stack::new(stack_bytes, Box::new(f))));
        }
        let _ = stack_bytes;
        Coro(Imp::Thread(thread_impl::new(Box::new(f))))
    }

    /// Create a coroutine explicitly on the thread backend, regardless of
    /// the process default. Used by tests as a differential oracle.
    pub fn thread_backed(f: impl FnOnce() + Send + 'static) -> Coro {
        Coro(Imp::Thread(thread_impl::new(Box::new(f))))
    }

    /// Run the task until its next suspend or completion.
    ///
    /// Returns `true` once the task has completed (further resumes are a
    /// contract violation and panic).
    pub fn resume(&mut self) -> bool {
        match &mut self.0 {
            #[cfg(target_arch = "x86_64")]
            Imp::Stack(c) => c.resume(),
            Imp::Thread(c) => c.resume(),
        }
    }

    /// `true` once the task has run to completion (returned or panicked).
    pub fn is_complete(&self) -> bool {
        match &self.0 {
            #[cfg(target_arch = "x86_64")]
            Imp::Stack(c) => c.is_complete(),
            Imp::Thread(c) => c.is_complete(),
        }
    }

    /// Take the panic payload of a completed task, if it panicked — exactly
    /// what `JoinHandle::join` would have returned as `Err` under
    /// thread-per-environment execution.
    pub fn take_panic(&mut self) -> Option<Box<dyn Any + Send + 'static>> {
        match &mut self.0 {
            #[cfg(target_arch = "x86_64")]
            Imp::Stack(c) => c.take_panic(),
            Imp::Thread(c) => c.take_panic(),
        }
    }
}

impl std::fmt::Debug for Coro {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let backend = match self.0 {
            #[cfg(target_arch = "x86_64")]
            Imp::Stack(_) => "stack",
            Imp::Thread(_) => "thread",
        };
        f.debug_struct("Coro")
            .field("backend", &backend)
            .field("complete", &self.is_complete())
            .finish()
    }
}

/// The x86_64 stack backend: a System-V context switch onto heap stacks.
#[cfg(target_arch = "x86_64")]
mod stack {
    use super::{current_replace, current_set, Current};
    use std::alloc::{alloc, dealloc, Layout};
    use std::any::Any;

    /// Shared state between the host side ([`StackCoro`]) and the coroutine
    /// side (reached through the `r12` slot seeded on the fresh stack).
    /// Boxed so its address is stable across moves of the handle.
    pub(super) struct Inner {
        /// Saved `rsp` of the coroutine while it is suspended.
        co_rsp: u64,
        /// Saved `rsp` of the host thread while the coroutine runs.
        host_rsp: u64,
        complete: bool,
        closure: Option<Box<dyn FnOnce() + Send + 'static>>,
        panic: Option<Box<dyn Any + Send + 'static>>,
        stack: *mut u8,
        layout: Layout,
    }

    pub(super) struct StackCoro {
        inner: Box<Inner>,
    }

    // SAFETY: the green stack and `Inner` are only ever touched by the one
    // host thread currently inside `resume` (the coroutine runs *on* that
    // thread), so moving the suspended handle between threads is a plain
    // ownership transfer. The crate-level contract forbids the closure from
    // holding `!Send` values across suspends, which is the only way
    // thread-affine state could otherwise ride along.
    unsafe impl Send for StackCoro {}

    /// Swap stacks: save callee-saved state on the current stack, store the
    /// resulting `rsp` through `save`, then load `rsp` from `restore` and
    /// pop the same state back. The `ret` at the end "returns" into the
    /// other context's `switch` call site (or the trampoline on first
    /// entry).
    ///
    /// # Safety
    ///
    /// `restore` must point at an `rsp` previously produced by this function
    /// (or by [`seed_stack`]), and that context must not be live on any
    /// other thread.
    #[unsafe(naked)]
    unsafe extern "C" fn switch(save: *mut u64, restore: *const u64) {
        core::arch::naked_asm!(
            "push rbp",
            "push rbx",
            "push r12",
            "push r13",
            "push r14",
            "push r15",
            "sub rsp, 8",
            "stmxcsr [rsp]",
            "fnstcw [rsp + 4]",
            "mov [rdi], rsp",
            "mov rsp, [rsi]",
            "ldmxcsr [rsp]",
            "fldcw [rsp + 4]",
            "add rsp, 8",
            "pop r15",
            "pop r14",
            "pop r13",
            "pop r12",
            "pop rbx",
            "pop rbp",
            "ret",
        )
    }

    /// First instruction a fresh coroutine executes: `switch`'s `ret` lands
    /// here with `r12` holding the `Inner` pointer (seeded by
    /// [`seed_stack`]). Establish the ABI frame (zero `rbp`, 16-byte-align
    /// `rsp`) and call into Rust; `entry` never returns here.
    #[unsafe(naked)]
    unsafe extern "C" fn trampoline() {
        core::arch::naked_asm!(
            "mov rdi, r12",
            "xor ebp, ebp",
            "and rsp, -16",
            "call {entry}",
            "ud2",
            entry = sym entry,
        )
    }

    /// Rust-side coroutine body. Runs the closure under `catch_unwind` so no
    /// panic ever unwinds into the naked trampoline, records the outcome,
    /// and switches back to the host for the last time.
    extern "C" fn entry(inner: *mut Inner) {
        // SAFETY: `inner` is the boxed Inner this stack was seeded with; the
        // host keeps it alive until the handle is dropped, and only this
        // thread touches it while the coroutine runs. Accesses go through
        // short-lived reborrows so host-side and coroutine-side borrows
        // never overlap in time.
        let f = unsafe { (*inner).closure.take() }.expect("fresh coroutine has its closure");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        unsafe {
            if let Err(payload) = outcome {
                (*inner).panic = Some(payload);
            }
            (*inner).complete = true;
            switch(&mut (*inner).co_rsp, &(*inner).host_rsp);
        }
        // `resume` refuses to re-enter a complete coroutine, so control can
        // never come back here. If it somehow does, the stack below us is
        // gone — abort rather than execute garbage.
        std::process::abort();
    }

    /// Power-on register image for a fresh coroutine, matching the restore
    /// half of [`switch`] (from `rsp` upward): MXCSR+FCW, `r15`–`r12`,
    /// `rbx`, `rbp`, return address.
    fn seed_stack(stack: *mut u8, size: usize, inner: *mut Inner) -> u64 {
        /// Default x86-64 FP state: MXCSR 0x1F80 (all exceptions masked,
        /// round-to-nearest) in the low word, x87 CW 0x037F at byte 4.
        const FP_DEFAULT: u64 = 0x1F80 | (0x037F << 32);
        let top = ((stack as usize + size) & !15) as *mut u64;
        // SAFETY: the 8 seeded slots lie within the freshly allocated stack
        // (size is at least MIN_STACK_BYTES).
        unsafe {
            let rsp = top.sub(8);
            rsp.add(0).write(FP_DEFAULT);
            rsp.add(1).write(0); // r15
            rsp.add(2).write(0); // r14
            rsp.add(3).write(0); // r13
            rsp.add(4).write(inner as u64); // r12: Inner for the trampoline
            rsp.add(5).write(0); // rbx
            rsp.add(6).write(0); // rbp
            rsp.add(7).write(trampoline as *const () as usize as u64); // return address
            rsp as u64
        }
    }

    pub(super) fn new(stack_bytes: usize, f: Box<dyn FnOnce() + Send + 'static>) -> StackCoro {
        let size = stack_bytes.max(super::MIN_STACK_BYTES);
        let layout = Layout::from_size_align(size, 64).expect("valid stack layout");
        // SAFETY: layout has non-zero size.
        let stack = unsafe { alloc(layout) };
        assert!(!stack.is_null(), "coroutine stack allocation failed");
        // SAFETY: the stack is at least MIN_STACK_BYTES and 64-aligned, so
        // the guard slot at its base is in-bounds and aligned.
        unsafe { (stack as *mut u64).write(super::CANARY) };
        let mut inner = Box::new(Inner {
            co_rsp: 0,
            host_rsp: 0,
            complete: false,
            closure: Some(f),
            panic: None,
            stack,
            layout,
        });
        inner.co_rsp = seed_stack(stack, size, &mut *inner);
        StackCoro { inner }
    }

    /// Whether the guard slot at the base of this coroutine's stack still
    /// holds [`super::CANARY`].
    ///
    /// # Safety
    ///
    /// `inner` must be the live `Inner` of the coroutine currently running
    /// on this thread (the pointer stored in `CURRENT`).
    pub(super) unsafe fn canary_ok(inner: *mut Inner) -> bool {
        ((*inner).stack as *const u64).read() == super::CANARY
    }

    /// Overwrite the guard slot, simulating the final write of a stack
    /// overflow (the `stack-overflow` fault class).
    ///
    /// # Safety
    ///
    /// Same contract as [`canary_ok`].
    pub(super) unsafe fn clobber_canary(inner: *mut Inner) {
        ((*inner).stack as *mut u64).write(0);
    }

    impl StackCoro {
        pub(super) fn resume(&mut self) -> bool {
            assert!(!self.inner.complete, "resume on a completed coroutine");
            let inner: *mut Inner = &mut *self.inner;
            let prev = current_replace(Current::Stack(inner));
            // SAFETY: `co_rsp` was produced by `seed_stack` or by the
            // suspend half of `switch`; the coroutine is suspended (not live
            // anywhere), which `complete == false` plus executor ownership
            // guarantees.
            unsafe { switch(&mut (*inner).host_rsp, &(*inner).co_rsp) };
            current_set(prev);
            self.inner.complete
        }

        pub(super) fn is_complete(&self) -> bool {
            self.inner.complete
        }

        pub(super) fn take_panic(&mut self) -> Option<Box<dyn Any + Send + 'static>> {
            self.inner.panic.take()
        }
    }

    /// Coroutine-side half of the switch: save the coroutine context, resume
    /// the host.
    ///
    /// # Safety
    ///
    /// Must be called on the thread currently running this coroutine (i.e.
    /// from inside its closure), with `inner` the pointer stored in the
    /// thread's `CURRENT` slot.
    pub(super) unsafe fn suspend(inner: *mut Inner) {
        if !canary_ok(inner) {
            super::overflow_panic(Some((*inner).layout.size()));
        }
        switch(&mut (*inner).co_rsp, &(*inner).host_rsp);
    }

    impl Drop for Inner {
        fn drop(&mut self) {
            // An incomplete coroutine's interior objects are leaked with the
            // stack (documented; the executor drains every task first).
            // SAFETY: allocated in `new` with this exact layout.
            unsafe { dealloc(self.stack, self.layout) };
        }
    }
}

/// The portable thread backend: one parked OS thread per coroutine and a
/// pair of rendezvous channels standing in for the context switch.
mod thread_impl {
    use super::{current_replace, current_set, Current};
    use std::any::Any;
    use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

    enum Status {
        Yielded,
        Done(Option<Box<dyn Any + Send + 'static>>),
    }

    /// The task thread's ends of the rendezvous channels; `CURRENT` points
    /// at this (it lives on the task thread's own stack) while the closure
    /// runs.
    pub(super) struct TaskSide {
        status_tx: SyncSender<Status>,
        go_rx: Receiver<()>,
        /// Stand-in for the stack backend's base-of-stack guard slot: OS
        /// thread stacks have their own guard pages, but keeping a live
        /// canary per task gives both backends the identical
        /// clobber/check/panic contract for the `stack-overflow` fault.
        canary: std::cell::Cell<u64>,
    }

    /// Unwind payload used to cancel a task whose handle was dropped before
    /// completion: unwinds the closure (running destructors) without being
    /// reported as a real panic.
    struct Cancelled;

    pub(super) struct ThreadCoro {
        go_tx: Option<SyncSender<()>>,
        status_rx: Receiver<Status>,
        handle: Option<std::thread::JoinHandle<()>>,
        complete: bool,
        panic: Option<Box<dyn Any + Send + 'static>>,
    }

    pub(super) fn new(f: Box<dyn FnOnce() + Send + 'static>) -> ThreadCoro {
        let (go_tx, go_rx) = sync_channel::<()>(1);
        let (status_tx, status_rx) = sync_channel::<Status>(1);
        let handle = std::thread::Builder::new()
            .name("tp-exec-task".into())
            .spawn(move || {
                let task = TaskSide {
                    status_tx,
                    go_rx,
                    canary: std::cell::Cell::new(super::CANARY),
                };
                // Stay parked until the first resume (a dropped handle never
                // runs the closure at all, matching the stack backend).
                if task.go_rx.recv().is_err() {
                    return;
                }
                let prev = current_replace(Current::Thread(&task as *const TaskSide));
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                current_set(prev);
                let payload = match outcome {
                    Ok(()) => None,
                    Err(p) if p.downcast_ref::<Cancelled>().is_some() => return,
                    Err(p) => Some(p),
                };
                let _ = task.status_tx.send(Status::Done(payload));
            })
            .expect("spawn coroutine task thread");
        ThreadCoro {
            go_tx: Some(go_tx),
            status_rx,
            handle: Some(handle),
            complete: false,
            panic: None,
        }
    }

    /// Task-side suspend: report `Yielded`, park until the next resume. A
    /// closed channel in either direction means the handle was dropped —
    /// cancel by unwinding.
    ///
    /// # Safety
    ///
    /// Must be called on the task thread owning `task` (guaranteed by
    /// `CURRENT` being thread-local).
    pub(super) unsafe fn suspend(task: *const TaskSide) {
        let task = &*task;
        if task.canary.get() != super::CANARY {
            super::overflow_panic(None);
        }
        if task.status_tx.send(Status::Yielded).is_err() {
            std::panic::panic_any(Cancelled);
        }
        if task.go_rx.recv().is_err() {
            std::panic::panic_any(Cancelled);
        }
    }

    /// Whether this task's guard canary is intact.
    ///
    /// # Safety
    ///
    /// Must be called on the task thread owning `task`.
    pub(super) unsafe fn canary_ok(task: *const TaskSide) -> bool {
        (*task).canary.get() == super::CANARY
    }

    /// Kill this task's guard canary (the `stack-overflow` fault class).
    ///
    /// # Safety
    ///
    /// Must be called on the task thread owning `task`.
    pub(super) unsafe fn clobber_canary(task: *const TaskSide) {
        (*task).canary.set(0);
    }

    impl ThreadCoro {
        pub(super) fn resume(&mut self) -> bool {
            assert!(!self.complete, "resume on a completed coroutine");
            let go = self
                .go_tx
                .as_ref()
                .expect("go channel open while incomplete");
            go.send(()).expect("task thread alive while incomplete");
            match self
                .status_rx
                .recv()
                .expect("task thread reports an outcome")
            {
                Status::Yielded => false,
                Status::Done(payload) => {
                    self.panic = payload;
                    self.complete = true;
                    if let Some(h) = self.handle.take() {
                        let _ = h.join();
                    }
                    true
                }
            }
        }

        pub(super) fn is_complete(&self) -> bool {
            self.complete
        }

        pub(super) fn take_panic(&mut self) -> Option<Box<dyn Any + Send + 'static>> {
            self.panic.take()
        }
    }

    impl Drop for ThreadCoro {
        fn drop(&mut self) {
            if !self.complete {
                // Closing the go channel makes the parked task cancel itself
                // at its current suspend point (or never start).
                self.go_tx = None;
                while self.status_rx.recv().is_ok() {}
            }
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Both constructors under test: the process-default backend and the
    /// forced thread fallback, which must be behaviourally identical.
    fn both(f: impl Fn() -> Box<dyn FnOnce() + Send + 'static>) -> Vec<Coro> {
        vec![Coro::new(f()), Coro::thread_backed(f())]
    }

    #[test]
    fn resume_suspend_interleaves_with_host() {
        let make = || {
            let n = Arc::new(AtomicUsize::new(0));
            (n.clone(), n)
        };
        type Mk = fn(Box<dyn FnOnce() + Send + 'static>) -> Coro;
        for mk in [Coro::new as Mk, Coro::thread_backed as Mk] {
            let (n, n2) = make();
            let body: Box<dyn FnOnce() + Send> = Box::new(move || {
                for _ in 0..3 {
                    n2.fetch_add(1, Ordering::SeqCst);
                    suspend();
                }
            });
            let mut co = mk(body);
            assert_eq!(n.load(Ordering::SeqCst), 0, "created suspended");
            assert!(!co.resume());
            assert_eq!(n.load(Ordering::SeqCst), 1);
            assert!(!co.resume());
            assert!(!co.resume());
            assert_eq!(n.load(Ordering::SeqCst), 3);
            assert!(co.resume(), "final resume runs to completion");
            assert!(co.is_complete());
            assert!(co.take_panic().is_none());
        }
    }

    #[test]
    fn panic_payload_is_captured_not_propagated() {
        struct Marker(u32);
        for mut co in both(|| {
            Box::new(|| {
                suspend();
                std::panic::panic_any(Marker(42));
            })
        }) {
            assert!(!co.resume());
            assert!(co.resume(), "panicking resume completes the task");
            let p = co.take_panic().expect("panic captured");
            assert_eq!(p.downcast_ref::<Marker>().expect("payload intact").0, 42);
        }
    }

    #[test]
    fn coroutine_migrates_between_host_threads() {
        for mut co in both(|| {
            Box::new(|| {
                for _ in 0..8 {
                    suspend();
                }
            })
        }) {
            // Resume alternately from fresh host threads: each resume hands
            // the same task to a different OS thread.
            for _ in 0..4 {
                co = std::thread::spawn(move || {
                    assert!(!co.resume());
                    co
                })
                .join()
                .expect("host thread clean");
            }
            while !co.resume() {}
            assert!(co.is_complete());
        }
    }

    #[test]
    fn on_coroutine_tracks_context() {
        assert!(!on_coroutine(), "host code is not a coroutine");
        let saw = Arc::new(AtomicUsize::new(0));
        let saw2 = saw.clone();
        let mut co = Coro::new(move || {
            saw2.store(on_coroutine() as usize, Ordering::SeqCst);
        });
        assert!(co.resume());
        assert_eq!(saw.load(Ordering::SeqCst), 1, "inside body: on_coroutine");
        assert!(!on_coroutine(), "restored after completion");
    }

    #[test]
    fn thousand_interleaved_coroutines() {
        // The scale the executor needs: far more tasks than any sane host
        // thread count, round-robined to completion. Small explicit stacks
        // keep the test light.
        let n = 1000usize;
        let counter = Arc::new(AtomicUsize::new(0));
        let mut tasks: Vec<Coro> = (0..n)
            .map(|_| {
                let c = counter.clone();
                Coro::with_stack(MIN_STACK_BYTES, move || {
                    for _ in 0..3 {
                        c.fetch_add(1, Ordering::SeqCst);
                        suspend();
                    }
                })
            })
            .collect();
        let mut live = n;
        while live > 0 {
            for co in &mut tasks {
                if !co.is_complete() && co.resume() {
                    live -= 1;
                }
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 3 * n);
    }

    #[test]
    fn canary_is_intact_on_healthy_coroutines_and_host() {
        assert!(canary_intact(), "host code always reports intact");
        clobber_canary(); // no-op on the host
        assert!(canary_intact());
        for mut co in both(|| {
            Box::new(|| {
                assert!(canary_intact(), "fresh coroutine starts intact");
                suspend();
                assert!(canary_intact(), "still intact after a round trip");
            })
        }) {
            assert!(!co.resume());
            assert!(co.resume());
            assert!(co.take_panic().is_none());
        }
    }

    #[test]
    fn clobbered_canary_panics_at_next_suspend_on_both_backends() {
        for mut co in both(|| {
            Box::new(|| {
                suspend();
                clobber_canary();
                assert!(!canary_intact());
                suspend(); // must raise the canonical overflow panic
                unreachable!("suspend past a dead canary");
            })
        }) {
            assert!(!co.resume());
            assert!(co.resume(), "overflow panic completes the task");
            let p = co.take_panic().expect("overflow panic captured");
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .expect("string panic payload");
            assert!(
                msg.starts_with("stack overflow: coroutine guard canary clobbered"),
                "canonical message, got: {msg}"
            );
        }
    }

    #[test]
    fn dropping_incomplete_coroutine_is_safe() {
        for co in both(|| {
            Box::new(|| {
                suspend();
                suspend();
            })
        }) {
            let mut co = co;
            assert!(!co.resume());
            drop(co); // mid-flight: thread backend cancels, stack backend leaks interior
        }
    }
}
